package mapreduce

import (
	"sync"
	"testing"

	"dyno/internal/batch"
	"dyno/internal/data"
	"dyno/internal/dfs"
	"dyno/internal/expr"
)

// The differential tests in this file run the same job three ways —
// columnar batch arm (the default), shuffle fast path with batching
// disabled, and the legacy per-record path — and assert the outputs
// are bit-identical: same records, same order, same statistics. The
// batch arm is a pure host-side accelerator layered on the fast path;
// any observable divergence is a bug. The input tables reuse the
// adversarial key mixes from the fast-path suite: every scalar kind,
// strings with embedded 0x00 terminator bytes, nulls, -0.0, and
// integers beyond ±2^53 that the normalized encoding refuses.

// batchDiffEnvs returns the three arms' environments: batch (both
// switches off — the default), fast (batching disabled), and legacy
// (fast path disabled, which alone must also disable batching).
func batchDiffEnvs() (batchEnv, fastEnv, legacyEnv *Env) {
	batchEnv = benchEnv()
	fastEnv = benchEnv()
	fastEnv.DisableBatch = true
	legacyEnv = benchEnv()
	legacyEnv.DisableFastPath = true
	return
}

// batchDiffPred is a filter over the mixed-kind key column and the
// integer sequence column that exercises every supported predicate
// shape: comparisons against a vecMixed column (nulls, booleans, 0x00
// strings, -0.0), an int column, and And/Or/Not combinators.
func batchDiffPred() expr.Expr {
	return &expr.Or{Terms: []expr.Expr{
		&expr.And{Terms: []expr.Expr{
			&expr.Cmp{Op: expr.GE, L: expr.NewCol("seq"), R: expr.NewLit(data.Int(100))},
			&expr.Cmp{Op: expr.LT, L: expr.NewCol("seq"), R: expr.NewLit(data.Int(1200))},
		}},
		&expr.Not{E: &expr.Cmp{Op: expr.LT, L: expr.NewCol("k"), R: expr.NewLit(data.String("k05"))}},
	}}
}

// wrapRec builds the {alias: rec} row a scan-shaped map emits — the
// per-record mirror of batch.Data.Wrapped.
func wrapRec(alias string, rec data.Value) data.Value {
	return data.Object(data.Field{Name: alias, Value: rec})
}

// runScanBatch executes a scan→filter→project job (filter raw records
// with pred, wrap survivors as {t: rec}) with the batch arm wired; the
// environment's switches decide which arm actually runs.
func runScanBatch(t *testing.T, env *Env, f *dfs.File, pred expr.Expr) *Result {
	t.Helper()
	res, err := Run(env, Spec{
		Name: "diff-batch-scan",
		Inputs: []Input{{
			File: f,
			Map: func(mc *MapCtx, rec data.Value) {
				if pred == nil || pred.Eval(mc.ExprCtx(), rec).Truthy() {
					mc.Emit(wrapRec("t", rec))
				}
			},
			BatchMap: ScanBatch("t", pred),
		}},
		Output:       "diff-batch-scanned",
		CollectStats: []data.Path{data.MustParsePath("t.k")},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// runShuffleBatch executes the identity shuffle keyed by t.k over
// wrapped rows with the batch arm wired.
func runShuffleBatch(t *testing.T, env *Env, f *dfs.File, pred expr.Expr) *Result {
	t.Helper()
	key := data.MustParsePath("t.k")
	res, err := Run(env, Spec{
		Name: "diff-batch-shuffle",
		Inputs: []Input{{
			File: f,
			Map: func(mc *MapCtx, rec data.Value) {
				if pred == nil || pred.Eval(mc.ExprCtx(), rec).Truthy() {
					row := wrapRec("t", rec)
					mc.EmitKV(key.Eval(row), "L", row)
				}
			},
			BatchMap: ShuffleBatch("t", pred, []data.Path{key}, "L"),
		}},
		Reduce: func(rc *ReduceCtx, key data.Value, group []Tagged) {
			for _, g := range group {
				rc.Emit(g.Rec)
			}
		},
		NumReducers:  4,
		Output:       "diff-batch-shuffled",
		CollectStats: []data.Path{key},
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestScanBatchVsFastVsLegacy asserts the columnar scan→filter→project
// arm emits exactly the per-record map's output over the adversarial
// key table, in all three modes.
func TestScanBatchVsFastVsLegacy(t *testing.T) {
	t.Parallel()
	pred := batchDiffPred()
	bEnv, fEnv, lEnv := batchDiffEnvs()
	bRes := runScanBatch(t, bEnv, mixedKeyTable(bEnv, "t", 1500), pred)
	fRes := runScanBatch(t, fEnv, mixedKeyTable(fEnv, "t", 1500), pred)
	lRes := runScanBatch(t, lEnv, mixedKeyTable(lEnv, "t", 1500), pred)
	assertSameRecords(t, bRes.Output.AllRecords(), fRes.Output.AllRecords())
	assertSameRecords(t, bRes.Output.AllRecords(), lRes.Output.AllRecords())
	assertSameStats(t, bRes.Stats, fRes.Stats)
	assertSameStats(t, bRes.Stats, lRes.Stats)
	if bRes.OutRecords == 0 || bRes.OutRecords == 1500 {
		t.Fatalf("filter not selective: %d of 1500 rows survived", bRes.OutRecords)
	}
}

// TestShuffleBatchVsFastVsLegacy asserts the columnar shuffle arm —
// split-wide key evaluation, normalization, and partition hashing —
// routes every record to the same reducer position as EmitKV, over
// keys of every encodable kind.
func TestShuffleBatchVsFastVsLegacy(t *testing.T) {
	t.Parallel()
	pred := batchDiffPred()
	bEnv, fEnv, lEnv := batchDiffEnvs()
	bRes := runShuffleBatch(t, bEnv, mixedKeyTable(bEnv, "t", 1500), pred)
	fRes := runShuffleBatch(t, fEnv, mixedKeyTable(fEnv, "t", 1500), pred)
	lRes := runShuffleBatch(t, lEnv, mixedKeyTable(lEnv, "t", 1500), pred)
	assertSameRecords(t, bRes.Output.AllRecords(), fRes.Output.AllRecords())
	assertSameRecords(t, bRes.Output.AllRecords(), lRes.Output.AllRecords())
	assertSameStats(t, bRes.Stats, fRes.Stats)
	assertSameStats(t, bRes.Stats, lRes.Stats)
}

// TestShuffleBatchUnencodableKeys covers keys the normalized encoding
// refuses (|int| > 2^53): the batch arm records an empty normalized
// key for them, which must route and sort exactly like EmitKV's
// fallback in both fast and legacy modes.
func TestShuffleBatchUnencodableKeys(t *testing.T) {
	t.Parallel()
	bEnv, fEnv, lEnv := batchDiffEnvs()
	bRes := runShuffleBatch(t, bEnv, hugeKeyTable(bEnv, "t", 900), nil)
	fRes := runShuffleBatch(t, fEnv, hugeKeyTable(fEnv, "t", 900), nil)
	lRes := runShuffleBatch(t, lEnv, hugeKeyTable(lEnv, "t", 900), nil)
	if bRes.OutRecords != 900 {
		t.Fatalf("out records: %d, want 900", bRes.OutRecords)
	}
	assertSameRecords(t, bRes.Output.AllRecords(), fRes.Output.AllRecords())
	assertSameRecords(t, bRes.Output.AllRecords(), lRes.Output.AllRecords())
	assertSameStats(t, bRes.Stats, fRes.Stats)
	assertSameStats(t, bRes.Stats, lRes.Stats)
}

// runProbeBatch executes a broadcast join whose batch arm probes the
// hash table through the split's cached key columns — ProbeNK against
// the normalized-key index when the table has one and the key
// normalized, Probe otherwise — mirroring the per-record arm exactly.
func runProbeBatch(t *testing.T, env *Env, probe, build *dfs.File) *Result {
	t.Helper()
	key := data.MustParsePath("k")
	keySig := batch.KeySig("", []data.Path{key})
	res, err := Run(env, Spec{
		Name: "diff-batch-bjoin",
		Inputs: []Input{{
			File: probe,
			Map: func(mc *MapCtx, rec data.Value) {
				for _, m := range mc.Build("b").Probe(key.Eval(rec)) {
					mc.Emit(data.MergeObjects(rec, m))
				}
			},
			BatchMap: func(mc *MapCtx, blk *dfs.Block) bool {
				d := batch.For(blk.Aux(), blk.Records())
				sel, ok := d.Select(nil, "")
				if !ok {
					return false
				}
				ht := mc.Build("b")
				rows := d.Records()
				kc := d.Keys(keySig, "", []data.Path{key})
				for _, i := range sel {
					var matches []data.Value
					if ht.FastIndexed() && kc.NK[i] != "" {
						matches = ht.ProbeNK(kc.NK[i])
					} else {
						matches = ht.Probe(kc.Vals[i])
					}
					for _, m := range matches {
						mc.Emit(data.MergeObjects(rows[i], m))
					}
				}
				return true
			},
		}},
		Broadcasts: []Broadcast{{Name: "b", File: build, KeyPaths: []data.Path{key}}},
		Output:     "diff-batch-bjoined",
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestProbeBatchVsFastVsLegacy asserts the vectorized probe produces
// the identical join result over mixed-kind keys in all three modes
// (legacy builds a Compare-based table, fast a normalized-key index,
// batch probes that index with cached per-split encodings).
func TestProbeBatchVsFastVsLegacy(t *testing.T) {
	t.Parallel()
	run := func(env *Env) *Result {
		return runProbeBatch(t, env, mixedKeyTable(env, "probe", 800), mixedKeyTable(env, "build", 120))
	}
	bEnv, fEnv, lEnv := batchDiffEnvs()
	bRes, fRes, lRes := run(bEnv), run(fEnv), run(lEnv)
	if bRes.OutRecords == 0 {
		t.Fatal("join produced no rows; test is vacuous")
	}
	assertSameRecords(t, bRes.Output.AllRecords(), fRes.Output.AllRecords())
	assertSameRecords(t, bRes.Output.AllRecords(), lRes.Output.AllRecords())
}

// TestProbeBatchDemotedTable covers the build side containing an
// unencodable key, which demotes the whole table to Compare-based
// probing (FastIndexed false): the batch arm must fall back to Probe
// per row and still match.
func TestProbeBatchDemotedTable(t *testing.T) {
	t.Parallel()
	run := func(env *Env) *Result {
		return runProbeBatch(t, env, hugeKeyTable(env, "probe", 800), hugeKeyTable(env, "build", 120))
	}
	bEnv, fEnv, lEnv := batchDiffEnvs()
	bRes, fRes, lRes := run(bEnv), run(fEnv), run(lEnv)
	if bRes.OutRecords == 0 {
		t.Fatal("join produced no rows; test is vacuous")
	}
	assertSameRecords(t, bRes.Output.AllRecords(), fRes.Output.AllRecords())
	assertSameRecords(t, bRes.Output.AllRecords(), lRes.Output.AllRecords())
}

// TestBatchCacheConcurrentJobs runs the same scan concurrently over
// one shared file from independent environments (each with its own
// single-threaded cluster simulator, sharing only the file system),
// so racing jobs contend on each split's auxiliary cache slot (CAS
// attach) and on lazy vector/selection construction under the split
// mutex — the sharing pattern of the concurrent query service. Run
// with -race, the test asserts the per-block cache is safe to share
// and that every job still observes identical output.
func TestBatchCacheConcurrentJobs(t *testing.T) {
	t.Parallel()
	pred := batchDiffPred()
	base := benchEnv()
	f := mixedKeyTable(base, "t", 1500)
	const jobs = 4
	results := make([][]data.Value, jobs)
	var wg sync.WaitGroup
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) {
			defer wg.Done()
			env := benchEnv()
			env.FS = base.FS // shared blocks, private simulator
			res, err := Run(env, Spec{
				Name: "diff-batch-concurrent",
				Inputs: []Input{{
					File: f,
					Map: func(mc *MapCtx, rec data.Value) {
						if pred.Eval(mc.ExprCtx(), rec).Truthy() {
							mc.Emit(wrapRec("t", rec))
						}
					},
					BatchMap: ScanBatch("t", pred),
				}},
				Output: "diff-batch-concurrent-out-" + string(rune('a'+j)),
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[j] = res.Output.AllRecords()
		}(j)
	}
	wg.Wait()
	for j := 1; j < jobs; j++ {
		assertSameRecords(t, results[0], results[j])
	}
}
