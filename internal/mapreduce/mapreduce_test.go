package mapreduce

import (
	"errors"
	"fmt"
	"testing"

	"dyno/internal/cluster"
	"dyno/internal/coord"
	"dyno/internal/data"
	"dyno/internal/dfs"
	"dyno/internal/expr"
)

// testEnv builds an environment with tiny blocks so jobs have several
// splits. Parallelism 4 makes the whole package exercise the pooled
// wave executor (run with -race); virtual results are identical to the
// serial path.
func testEnv(t *testing.T) *Env {
	t.Helper()
	cfg := cluster.Config{
		Workers:              2,
		MapSlotsPerWorker:    2,
		ReduceSlotsPerWorker: 2,
		SlotMemory:           100_000,
		JobStartup:           10,
		TaskOverhead:         1,
		ScanBps:              10_000,
		ShuffleBps:           5_000,
		WriteBps:             10_000,
		Parallelism:          4,
	}
	return &Env{
		FS:    dfs.New(dfs.WithBlockSize(600), dfs.WithNodes(2)),
		Sim:   cluster.New(cfg),
		Coord: coord.NewService(),
		Reg:   expr.NewRegistry(),
	}
}

// writeTable stores n rows {alias: {id, grp, pad}} and returns the file.
func writeTable(env *Env, name, alias string, n int) *dfs.File {
	w := env.FS.Create(name)
	for i := 0; i < n; i++ {
		w.Append(data.Object(data.Field{Name: alias, Value: data.Object(
			data.Field{Name: "id", Value: data.Int(int64(i))},
			data.Field{Name: "grp", Value: data.Int(int64(i % 10))},
			data.Field{Name: "pad", Value: data.String("xxxxxxxxxxxxxxxxxxxxxxxx")},
		)}))
	}
	return w.Close()
}

func identityMap(mc *MapCtx, rec data.Value) { mc.Emit(rec) }

func TestMapOnlyFilterJob(t *testing.T) {
	env := testEnv(t)
	f := writeTable(env, "t", "a", 200)
	pred := &expr.Cmp{Op: expr.LT, L: expr.NewCol("a.id"), R: expr.NewLit(data.Int(50))}
	res, err := Run(env, Spec{
		Name: "filter",
		Inputs: []Input{{File: f, Map: func(mc *MapCtx, rec data.Value) {
			if pred.Eval(mc.ExprCtx(), rec).Truthy() {
				mc.Emit(rec)
			}
		}}},
		Output:       "out",
		CollectStats: []data.Path{data.MustParsePath("a.id")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutRecords != 50 || res.InRecords != 200 {
		t.Errorf("in=%d out=%d", res.InRecords, res.OutRecords)
	}
	if res.Output.NumRecords() != 50 {
		t.Errorf("output file has %d records", res.Output.NumRecords())
	}
	if !res.WholeInput {
		t.Error("whole input should have been consumed")
	}
	if res.Stats == nil || res.Stats.Selectivity() != 0.25 {
		t.Errorf("stats selectivity = %v", res.Stats.Selectivity())
	}
	col, ok := res.Stats.Exact().Col("a.id")
	if !ok || col.Max.Int() != 49 {
		t.Errorf("col stats = %+v ok=%v", col, ok)
	}
	// Deterministic output order: ids ascending (split order).
	recs := res.Output.AllRecords()
	for i := 1; i < len(recs); i++ {
		if recs[i-1].FieldOr("a").FieldOr("id").Int() > recs[i].FieldOr("a").FieldOr("id").Int() {
			t.Fatal("output order not deterministic by split")
		}
	}
}

func TestRepartitionJoin(t *testing.T) {
	env := testEnv(t)
	left := writeTable(env, "l", "l", 60)
	right := writeTable(env, "r", "r", 30)
	keyL := data.MustParsePath("l.grp")
	keyR := data.MustParsePath("r.grp")
	res, err := Run(env, Spec{
		Name: "join",
		Inputs: []Input{
			{File: left, Map: func(mc *MapCtx, rec data.Value) {
				mc.EmitKV(keyL.Eval(rec), "L", rec)
			}},
			{File: right, Map: func(mc *MapCtx, rec data.Value) {
				mc.EmitKV(keyR.Eval(rec), "R", rec)
			}},
		},
		Reduce: func(rc *ReduceCtx, key data.Value, group []Tagged) {
			var ls, rs []data.Value
			for _, g := range group {
				if g.Tag == "L" {
					ls = append(ls, g.Rec)
				} else {
					rs = append(rs, g.Rec)
				}
			}
			for _, l := range ls {
				for _, r := range rs {
					rc.Emit(data.MergeObjects(l, r))
				}
			}
		},
		Output:      "joined",
		NumReducers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 60 left rows × 3 right matches per group (30 rows / 10 groups).
	if res.OutRecords != 180 {
		t.Errorf("join output = %d, want 180", res.OutRecords)
	}
	if res.ReduceTasks != 3 {
		t.Errorf("reducers = %d", res.ReduceTasks)
	}
	// Verify a joined row carries both sides.
	rec := res.Output.AllRecords()[0]
	if rec.FieldOr("l").IsNull() || rec.FieldOr("r").IsNull() {
		t.Errorf("joined record missing side: %v", rec)
	}
	lg := rec.FieldOr("l").FieldOr("grp").Int()
	rg := rec.FieldOr("r").FieldOr("grp").Int()
	if lg != rg {
		t.Errorf("join key mismatch: %d vs %d", lg, rg)
	}
}

func TestBroadcastJoin(t *testing.T) {
	env := testEnv(t)
	big := writeTable(env, "big", "b", 100)
	small := writeTable(env, "small", "s", 10) // ids 0..9 = b.grp domain
	res, err := Run(env, Spec{
		Name: "bjoin",
		Inputs: []Input{{File: big, Map: func(mc *MapCtx, rec data.Value) {
			ht := mc.Build("s")
			for _, m := range ht.Probe(rec.FieldOr("b").FieldOr("grp")) {
				mc.Emit(data.MergeObjects(rec, m))
			}
		}}},
		Broadcasts: []Broadcast{{Name: "s", File: small, KeyPaths: []data.Path{data.MustParsePath("s.id")}}},
		Output:     "bjoined",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutRecords != 100 {
		t.Errorf("broadcast join output = %d, want 100", res.OutRecords)
	}
	if res.ReduceTasks != 0 {
		t.Error("broadcast join must be map-only")
	}
}

func TestBroadcastOOM(t *testing.T) {
	env := testEnv(t)
	env.Sim = cluster.New(cluster.Config{
		Workers: 1, MapSlotsPerWorker: 1, ReduceSlotsPerWorker: 1,
		SlotMemory: 10, // tiny
		JobStartup: 1, TaskOverhead: 1, ScanBps: 1000, ShuffleBps: 1000, WriteBps: 1000,
		Parallelism: 4,
	})
	big := writeTable(env, "big", "b", 20)
	small := writeTable(env, "small", "s", 10)
	_, err := Run(env, Spec{
		Name:   "oom",
		Inputs: []Input{{File: big, Map: identityMap}},
		Broadcasts: []Broadcast{
			{Name: "s", File: small, KeyPaths: []data.Path{data.MustParsePath("s.id")}},
		},
		Output: "x",
	})
	if err == nil || !errors.Is(err, ErrBroadcastOOM) {
		t.Fatalf("err = %v, want ErrBroadcastOOM", err)
	}
}

func TestDistributedCacheReducesLatency(t *testing.T) {
	durations := make([]float64, 2)
	for i, dc := range []bool{false, true} {
		env := testEnv(t)
		env.DistributedCache = dc
		big := writeTable(env, "big", "b", 400)
		small := writeTable(env, "small", "s", 10)
		j, sub, err := Submit(env, Spec{
			Name:   "dc",
			Inputs: []Input{{File: big, Map: identityMap}},
			Broadcasts: []Broadcast{
				{Name: "s", File: small, KeyPaths: []data.Path{data.MustParsePath("s.id")}},
			},
			Output: "x",
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := env.Sim.Run(); err != nil {
			t.Fatal(err)
		}
		if _, err := j.Result(); err != nil {
			t.Fatal(err)
		}
		durations[i] = sub.Duration()
	}
	if durations[1] >= durations[0] {
		t.Errorf("distributed cache %v should beat per-task load %v", durations[1], durations[0])
	}
}

func TestPilotEarlyTermination(t *testing.T) {
	env := testEnv(t)
	f := writeTable(env, "t", "a", 2000)
	res, err := Run(env, Spec{
		Name:      "pilot-st",
		Inputs:    []Input{{File: f, Map: identityMap}},
		Output:    "sample",
		StopAfter: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SplitsRun >= res.SplitsTotal {
		t.Errorf("ran %d/%d splits; early termination failed", res.SplitsRun, res.SplitsTotal)
	}
	if res.OutRecords < 40 {
		t.Errorf("emitted %d records, want >= 40", res.OutRecords)
	}
	if res.WholeInput {
		t.Error("WholeInput should be false")
	}
}

func TestPilotOnDemandSplits(t *testing.T) {
	env := testEnv(t)
	f := writeTable(env, "t", "a", 2000)
	total := f.NumBlocks()
	if total < 6 {
		t.Fatalf("need several blocks, got %d", total)
	}
	// Very selective filter: initial 2 splits cannot yield 40 records,
	// so reserve splits must be pulled in.
	var reserve []int
	for s := 2; s < total; s++ {
		reserve = append(reserve, s)
	}
	emitted := 0
	res, err := Run(env, Spec{
		Name: "pilot-mt",
		Inputs: []Input{{File: f, Splits: []int{0, 1}, Map: func(mc *MapCtx, rec data.Value) {
			if rec.FieldOr("a").FieldOr("id").Int()%10 == 0 {
				emitted++
				mc.Emit(rec)
			}
		}}},
		Output:     "sample",
		StopAfter:  40,
		MoreSplits: [][]int{reserve},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SplitsRun <= 2 {
		t.Errorf("ran only %d splits; reserve splits not added", res.SplitsRun)
	}
	if res.OutRecords < 40 {
		t.Errorf("emitted %d, want >= 40", res.OutRecords)
	}
}

func TestPilotFinishThreshold(t *testing.T) {
	env := testEnv(t)
	f := writeTable(env, "t", "a", 300)
	res, err := Run(env, Spec{
		Name:                 "pilot-finish",
		Inputs:               []Input{{File: f, Map: identityMap}},
		Output:               "sample",
		StopAfter:            5,
		FinishIfFractionDone: 0.01, // effectively always finish
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.WholeInput {
		t.Errorf("FinishIfFractionDone should let the job complete (%d/%d)", res.SplitsRun, res.SplitsTotal)
	}
}

func TestReduceStatsCollected(t *testing.T) {
	env := testEnv(t)
	f := writeTable(env, "t", "a", 100)
	key := data.MustParsePath("a.grp")
	res, err := Run(env, Spec{
		Name:   "grp",
		Inputs: []Input{{File: f, Map: func(mc *MapCtx, rec data.Value) { mc.EmitKV(key.Eval(rec), "", rec) }}},
		Reduce: func(rc *ReduceCtx, k data.Value, group []Tagged) {
			rc.Emit(data.Object(
				data.Field{Name: "g", Value: data.Object(
					data.Field{Name: "grp", Value: k},
					data.Field{Name: "cnt", Value: data.Int(int64(len(group)))},
				)},
			))
		},
		Output:       "agg",
		NumReducers:  2,
		CollectStats: []data.Path{data.MustParsePath("g.grp")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutRecords != 10 {
		t.Errorf("groups = %d, want 10", res.OutRecords)
	}
	ts := res.Stats.Exact()
	if ts.Card != 10 {
		t.Errorf("stats card = %v", ts.Card)
	}
	if ndv := ts.NDVOr("g.grp", -1); ndv != 10 {
		t.Errorf("grp NDV = %v, want 10", ndv)
	}
	// Each group has exactly 10 members.
	for _, rec := range res.Output.AllRecords() {
		if cnt := rec.FieldOr("g").FieldOr("cnt").Int(); cnt != 10 {
			t.Errorf("group count = %d, want 10", cnt)
		}
	}
}

func TestUDFCostChargedToTask(t *testing.T) {
	env := testEnv(t)
	env.Reg.Register(expr.UDF{
		Name:    "expensive",
		CPUCost: 0.5,
		Fn:      func(args []data.Value) data.Value { return data.Bool(true) },
	})
	f := writeTable(env, "t", "a", 20)
	call := &expr.Call{Name: "expensive", Args: []expr.Expr{expr.NewCol("a")}}
	j, sub, err := Submit(env, Spec{
		Name: "udf",
		Inputs: []Input{{File: f, Map: func(mc *MapCtx, rec data.Value) {
			if call.Eval(mc.ExprCtx(), rec).Truthy() {
				mc.Emit(rec)
			}
		}}},
		Output: "out",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	var cpu float64
	for _, task := range sub.CompletedTasks() {
		cpu += task.Usage().CPUSeconds
	}
	if cpu != 10.0 {
		t.Errorf("total UDF CPU = %v, want 10.0 (20 calls × 0.5)", cpu)
	}
	_ = res
}

func TestUnknownUDFFailsJob(t *testing.T) {
	env := testEnv(t)
	f := writeTable(env, "t", "a", 5)
	call := &expr.Call{Name: "missing"}
	_, err := Run(env, Spec{
		Name: "bad",
		Inputs: []Input{{File: f, Map: func(mc *MapCtx, rec data.Value) {
			call.Eval(mc.ExprCtx(), rec)
			mc.Emit(rec)
		}}},
		Output: "out",
	})
	if err == nil {
		t.Fatal("unknown UDF should fail the job")
	}
}

func TestSpecValidation(t *testing.T) {
	env := testEnv(t)
	f := writeTable(env, "t", "a", 5)
	cases := []Spec{
		{},
		{Name: "x"},
		{Name: "x", Inputs: []Input{{File: f, Map: identityMap}}},
		{Name: "x", Inputs: []Input{{File: f, Map: identityMap}}, Output: "o",
			MoreSplits: [][]int{{1}, {2}}},
	}
	for i, spec := range cases {
		if _, err := NewJob(env, spec); err == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
	if _, err := NewJob(nil, Spec{}); err == nil {
		t.Error("nil env should fail")
	}
}

func TestDefaultReducersScaleWithInput(t *testing.T) {
	env := testEnv(t)
	env.BytesPerReducer = 2000
	f := writeTable(env, "t", "a", 300)
	key := data.MustParsePath("a.grp")
	j, err := NewJob(env, Spec{
		Name:   "auto",
		Inputs: []Input{{File: f, Map: func(mc *MapCtx, rec data.Value) { mc.EmitKV(key.Eval(rec), "", rec) }}},
		Reduce: func(rc *ReduceCtx, k data.Value, group []Tagged) {},
		Output: "o",
	})
	if err != nil {
		t.Fatal(err)
	}
	if j.numReducers < 2 {
		t.Errorf("numReducers = %d, want input-proportional (>1)", j.numReducers)
	}
}

func TestJobsChainViaOnDone(t *testing.T) {
	env := testEnv(t)
	f := writeTable(env, "t", "a", 50)
	j1, sub1, err := Submit(env, Spec{
		Name:   "first",
		Inputs: []Input{{File: f, Map: identityMap}},
		Output: "mid",
	})
	if err != nil {
		t.Fatal(err)
	}
	var j2 *Job
	sub1.OnDone(func(*cluster.Submission) {
		res, err := j1.Result()
		if err != nil {
			t.Error(err)
			return
		}
		j2, _, err = Submit(env, Spec{
			Name:   "second",
			Inputs: []Input{{File: res.Output, Map: identityMap}},
			Output: "final",
		})
		if err != nil {
			t.Error(err)
		}
	})
	if err := env.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	res2, err := j2.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res2.OutRecords != 50 {
		t.Errorf("chained output = %d", res2.OutRecords)
	}
}

func TestResultBeforeCompletion(t *testing.T) {
	env := testEnv(t)
	f := writeTable(env, "t", "a", 5)
	j, _, err := Submit(env, Spec{
		Name: "x", Inputs: []Input{{File: f, Map: identityMap}}, Output: "o",
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Result(); err == nil {
		t.Error("Result before Run should fail")
	}
}

func TestHashTableProbeCollisionSafety(t *testing.T) {
	env := testEnv(t)
	w := env.FS.Create("s")
	for i := 0; i < 50; i++ {
		w.Append(data.Object(data.Field{Name: "s", Value: data.Object(
			data.Field{Name: "k", Value: data.Int(int64(i))},
		)}))
	}
	f := w.Close()
	ht, err := buildHashTable(env, Broadcast{Name: "s", File: f, KeyPaths: []data.Path{data.MustParsePath("s.k")}})
	if err != nil {
		t.Fatal(err)
	}
	if ht.Rows() != 50 {
		t.Errorf("rows = %d", ht.Rows())
	}
	hits := ht.Probe(data.Int(7))
	if len(hits) != 1 || hits[0].FieldOr("s").FieldOr("k").Int() != 7 {
		t.Errorf("probe(7) = %v", hits)
	}
	if got := ht.Probe(data.Int(999)); len(got) != 0 {
		t.Errorf("probe(999) = %v", got)
	}
}

func TestMapOnlyOutputCountsBytes(t *testing.T) {
	env := testEnv(t)
	env.FS.SetByteScale(100)
	f := writeTable(env, "t", "a", 20)
	j, sub, err := Submit(env, Spec{
		Name:   "bytes",
		Inputs: []Input{{File: f, Map: identityMap}},
		Output: "o",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	res, err := j.Result()
	if err != nil {
		t.Fatal(err)
	}
	var written int64
	for _, task := range sub.CompletedTasks() {
		written += task.Usage().BytesWritten
	}
	if written != res.OutputVirtual {
		t.Errorf("task BytesWritten %d != output virtual size %d", written, res.OutputVirtual)
	}
	_ = fmt.Sprint(res)
}

func TestBroadcastWrapAndFilter(t *testing.T) {
	env := testEnv(t)
	// Raw (unwrapped) dimension records.
	w := env.FS.Create("dim")
	for i := 0; i < 30; i++ {
		w.Append(data.Object(
			data.Field{Name: "k", Value: data.Int(int64(i))},
			data.Field{Name: "flag", Value: data.Int(int64(i % 3))},
		))
	}
	dim := w.Close()
	big := writeTable(env, "big", "b", 90)
	filter := &expr.Cmp{Op: expr.EQ, L: expr.NewCol("s.flag"), R: expr.NewLit(data.Int(0))}
	res, err := Run(env, Spec{
		Name: "wrapped",
		Inputs: []Input{{File: big, Map: func(mc *MapCtx, rec data.Value) {
			for _, m := range mc.Build("s").Probe(rec.FieldOr("b").FieldOr("grp")) {
				mc.Emit(data.MergeObjects(rec, m))
			}
		}}},
		Broadcasts: []Broadcast{{
			Name: "s", File: dim, KeyPaths: []data.Path{data.MustParsePath("s.k")},
			Wrap: "s", Filter: filter,
		}},
		Output: "out",
	})
	if err != nil {
		t.Fatal(err)
	}
	// b.grp in 0..9; dim keys 0..29 with flag==0 for k%3==0, so grp 0,3,6,9
	// match: 4 of 10 groups × 9 rows each = 36.
	if res.OutRecords != 36 {
		t.Errorf("filtered broadcast join output = %d, want 36", res.OutRecords)
	}
	rec := res.Output.AllRecords()[0]
	if rec.FieldOr("s").FieldOr("k").IsNull() {
		t.Errorf("wrapped build side missing in output: %v", rec)
	}
}

func TestBroadcastFilterPrepChargedOnce(t *testing.T) {
	env := testEnv(t)
	env.Reg.Register(expr.UDF{
		Name:    "dimfilter",
		CPUCost: 1.0,
		Fn: func(args []data.Value) data.Value {
			return data.Bool(args[0].FieldOr("flag").Int() == 0)
		},
	})
	w := env.FS.Create("dim")
	for i := 0; i < 30; i++ {
		w.Append(data.Object(
			data.Field{Name: "k", Value: data.Int(int64(i))},
			data.Field{Name: "flag", Value: data.Int(int64(i % 3))},
		))
	}
	dim := w.Close()
	big := writeTable(env, "big", "b", 200)
	filter := &expr.Call{Name: "dimfilter", Args: []expr.Expr{expr.NewCol("s")}}
	j, sub, err := Submit(env, Spec{
		Name: "prep",
		Inputs: []Input{{File: big, Map: func(mc *MapCtx, rec data.Value) {
			mc.Emit(rec)
		}}},
		Broadcasts: []Broadcast{{
			Name: "s", File: dim, KeyPaths: []data.Path{data.MustParsePath("s.k")},
			Wrap: "s", Filter: filter,
		}},
		Output: "out",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := env.Sim.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := j.Result(); err != nil {
		t.Fatal(err)
	}
	// The build-preparation stage (an extra job startup plus the
	// distributed dim scan and UDF work) is charged exactly once
	// across all map tasks, not once per task.
	var prepTasks int
	for _, task := range sub.CompletedTasks() {
		if task.Usage().ExtraLatency > 9 {
			prepTasks++
		}
	}
	if prepTasks != 1 {
		t.Errorf("prep charged on %d tasks, want exactly 1", prepTasks)
	}
	if len(sub.CompletedTasks()) < 2 {
		t.Fatal("test needs multiple map tasks")
	}
}

func TestBroadcastOOMUsesFilteredSize(t *testing.T) {
	// A big base file whose filtered build fits in memory must not OOM.
	env := testEnv(t)
	env.Sim = cluster.New(cluster.Config{
		Workers: 1, MapSlotsPerWorker: 2, ReduceSlotsPerWorker: 1,
		SlotMemory: 600, // only a handful of rows fit
		JobStartup: 1, TaskOverhead: 1, ScanBps: 1000, ShuffleBps: 1000, WriteBps: 1000,
		Parallelism: 4,
	})
	w := env.FS.Create("dim")
	for i := 0; i < 200; i++ {
		w.Append(data.Object(
			data.Field{Name: "k", Value: data.Int(int64(i))},
		))
	}
	dim := w.Close()
	big := writeTable(env, "big", "b", 20)
	selective := &expr.Cmp{Op: expr.LT, L: expr.NewCol("s.k"), R: expr.NewLit(data.Int(5))}
	_, err := Run(env, Spec{
		Name:   "fits",
		Inputs: []Input{{File: big, Map: identityMap}},
		Broadcasts: []Broadcast{{
			Name: "s", File: dim, KeyPaths: []data.Path{data.MustParsePath("s.k")},
			Wrap: "s", Filter: selective,
		}},
		Output: "out",
	})
	if err != nil {
		t.Fatalf("filtered build should fit: %v", err)
	}
	// Without the filter the same build must OOM.
	_, err = Run(env, Spec{
		Name:   "toolarge",
		Inputs: []Input{{File: big, Map: identityMap}},
		Broadcasts: []Broadcast{{
			Name: "s", File: dim, KeyPaths: []data.Path{data.MustParsePath("s.k")}, Wrap: "s",
		}},
		Output: "out2",
	})
	if !errors.Is(err, ErrBroadcastOOM) {
		t.Errorf("unfiltered build should OOM, got %v", err)
	}
}
