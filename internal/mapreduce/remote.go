package mapreduce

import (
	"fmt"

	"dyno/internal/cluster"
	"dyno/internal/data"
	"dyno/internal/dfs"
)

// TaskExecutor is the execution seam of the runtime backends: when
// Env.Exec is set, the per-record work of every map and reduce task is
// delegated to it (a remote worker fleet), while the job lifecycle —
// scheduling, shuffling, statistics, virtual-time accounting, retries
// and speculation — keeps running in-process against the simulator.
// Both backends therefore run the same plans, produce the same rows,
// and count the same jobs by construction; only where the record loop
// executes differs.
type TaskExecutor interface {
	ExecMap(m MapExec) (*MapExecOut, error)
	ExecReduce(r ReduceExec) (*ReduceExecOut, error)
}

// RemoteKV is one shuffled pair returned by a remote map task.
type RemoteKV struct {
	Key data.Value
	Tag string
	Rec data.Value
}

// MapExec describes one map task for a TaskExecutor.
type MapExec struct {
	JobName  string
	TaskName string
	// File and Split identify the input block (the executor resolves
	// them to worker-readable storage).
	File     *dfs.File
	Split    int
	InputIdx int
	// NumReducers partitions shuffle output; HasReduce selects between
	// row output and pair output; RunCombine asks the worker to fold
	// the map-side combiner over its shuffle buckets.
	NumReducers int
	HasReduce   bool
	RunCombine  bool
	// Broadcasts are the job's build sides (workers rebuild the hash
	// tables from the referenced files).
	Broadcasts []Broadcast
	// Op is the serialized operator (a *wire.OpSpec); the seam keeps it
	// opaque so this package does not depend on the wire layer.
	Op any
}

// MapExecOut is a remote map task's output. CPUMap is the UDF cost of
// the map phase alone; CPUTotal additionally includes the combiner —
// the controller charges both against the virtual clock with exactly
// the local path's accrual pattern.
type MapExecOut struct {
	Rows     []data.Value // map-only jobs
	Pairs    [][]RemoteKV // shuffle jobs: one slice per partition
	CPUMap   float64
	CPUTotal float64
}

// ReduceExec describes one reduce task: the partition's pairs, already
// gathered and sorted into reduce key order by the controller.
type ReduceExec struct {
	JobName   string
	TaskName  string
	Partition int
	Pairs     []RemoteKV
	Op        any
}

// ReduceExecOut is a remote reduce task's output.
type ReduceExecOut struct {
	Rows       []data.Value
	CPUSeconds float64
}

// errNoRemoteOp rejects jobs submitted without a serialized operator
// while a task executor is installed. Failing loudly here is what
// makes the differential contract trustworthy: the proc backend can
// never silently fall back to in-process execution.
func (j *Job) errNoRemoteOp() error {
	return fmt.Errorf("mapreduce: job %s has no remote op for the task executor", j.spec.Name)
}

// runMapRemote delegates the record loop of one map task to the
// executor and replays its outputs through the exact accounting the
// local path performs (input stats, CPU accrual including the
// combiner's double-add, output volume, shared counter).
func (j *Job) runMapRemote(st *mapTaskState, input Input, u cluster.Usage) (cluster.Usage, error) {
	if j.spec.RemoteOp == nil {
		return u, j.errNoRemoteOp()
	}
	out, err := j.env.Exec.ExecMap(MapExec{
		JobName:     j.spec.Name,
		TaskName:    fmt.Sprintf("%s-m%d", j.spec.Name, st.seq),
		File:        input.File,
		Split:       st.splitIdx,
		InputIdx:    st.inputIdx,
		NumReducers: j.numReducers,
		HasReduce:   j.spec.Reduce != nil,
		RunCombine:  j.spec.Combine != nil && j.spec.Reduce != nil,
		Broadcasts:  j.spec.Broadcasts,
		Op:          j.spec.RemoteOp,
	})
	if err != nil {
		return u, err
	}
	n := input.File.Block(st.splitIdx).NumRecords()
	if st.collector != nil {
		st.collector.ObserveInputs(n)
	}
	fast := j.fastPath()
	if j.spec.Reduce == nil {
		st.outRows = append(st.outRows, out.Rows...)
	} else {
		if len(out.Pairs) != j.numReducers {
			return u, fmt.Errorf("mapreduce: executor returned %d partitions for %s, want %d",
				len(out.Pairs), j.spec.Name, j.numReducers)
		}
		// Rebuild the shuffle buckets; the normalized key is recomputed
		// here so downstream sort/group order is identical to a locally
		// produced bucket.
		var nkBuf []byte
		for p, pairs := range out.Pairs {
			for _, rkv := range pairs {
				kv := kvPair{key: rkv.Key, tag: rkv.Tag, rec: rkv.Rec}
				if fast {
					if b, ok := data.AppendNormKey(nkBuf[:0], rkv.Key); ok {
						kv.nk = string(b)
						nkBuf = b
					} else {
						nkBuf = b[:0]
					}
				}
				st.buckets[p] = append(st.buckets[p], kv)
			}
		}
	}
	u.Records += int64(n)
	u.CPUSeconds += out.CPUMap
	if j.spec.Combine != nil && j.spec.Reduce != nil {
		// The local path charges the map-phase CPU once and then the
		// accumulated map+combine total again after combining; replay
		// the same double-add so virtual timelines agree.
		u.CPUSeconds += out.CPUTotal
	}
	var emitted int64
	if j.spec.Reduce == nil {
		for _, rec := range st.outRows {
			sz := j.env.VirtualSize(rec)
			u.BytesWritten += sz
			if st.collector != nil {
				st.collector.ObserveOutput(rec, sz)
			}
		}
		emitted = int64(len(st.outRows))
	} else {
		for _, bucket := range st.buckets {
			for _, kv := range bucket {
				u.BytesShuffled += j.env.VirtualSize(kv.rec)
			}
			emitted += int64(len(bucket))
		}
	}
	if emitted > 0 {
		j.env.Coord.Add(j.counterName, emitted)
	}
	return u, nil
}

// runReduceRemote gathers and sorts the partition's pairs exactly like
// the local path, delegates the group loop to the executor, and
// replays the output accounting.
func (j *Job) runReduceRemote(st *reduceTaskState, partition int) (cluster.Usage, error) {
	var u cluster.Usage
	if j.spec.RemoteOp == nil {
		return u, j.errNoRemoteOp()
	}
	var pairs []kvPair
	for _, ms := range j.mapStates {
		if partition < len(ms.buckets) {
			bucket := ms.buckets[partition]
			pairs = append(pairs, bucket...)
			for _, kv := range bucket {
				u.BytesShuffled += j.env.VirtualSize(kv.rec)
			}
		}
	}
	sortPairsByKey(pairs)
	remote := make([]RemoteKV, len(pairs))
	for i, kv := range pairs {
		remote[i] = RemoteKV{Key: kv.key, Tag: kv.tag, Rec: kv.rec}
	}
	out, err := j.env.Exec.ExecReduce(ReduceExec{
		JobName:   j.spec.Name,
		TaskName:  fmt.Sprintf("%s-r%d", j.spec.Name, partition),
		Partition: partition,
		Pairs:     remote,
		Op:        j.spec.RemoteOp,
	})
	if err != nil {
		return u, err
	}
	st.outRows = append(st.outRows, out.Rows...)
	u.Records += int64(len(pairs))
	u.CPUSeconds += out.CPUSeconds
	for _, rec := range st.outRows {
		sz := j.env.VirtualSize(rec)
		u.BytesWritten += sz
		if st.collector != nil {
			st.collector.ObserveOutput(rec, sz)
		}
	}
	return u, nil
}
