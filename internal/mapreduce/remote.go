package mapreduce

import (
	"fmt"

	"dyno/internal/cluster"
	"dyno/internal/data"
	"dyno/internal/dfs"
)

// TaskExecutor is the execution seam of the runtime backends: when
// Env.Exec is set, the per-record work of every map and reduce task is
// delegated to it (a remote worker fleet), while the job lifecycle —
// scheduling, shuffling, statistics, virtual-time accounting, retries
// and speculation — keeps running in-process against the simulator.
// Both backends therefore run the same plans, produce the same rows,
// and count the same jobs by construction; only where the record loop
// executes differs.
type TaskExecutor interface {
	ExecMap(m MapExec) (*MapExecOut, error)
	ExecReduce(r ReduceExec) (*ReduceExecOut, error)
}

// JobRetirer is an optional TaskExecutor extension: executors that
// retain intermediate state outside the controller (peer-held shuffle
// blocks) are told when a job's output is final so they can reclaim
// it.
type JobRetirer interface {
	RetireJob(jobName string)
}

// RemoteKV is one shuffled pair returned by a remote map task.
type RemoteKV struct {
	Key data.Value
	Tag string
	Rec data.Value
}

// ShufflePart digests one shuffle partition retained away from the
// controller: its pair count and its virtual shuffle bytes, computed
// by the executor with the controller's exact per-record arithmetic
// so replayed accounting is bit-identical to a materialized bucket.
type ShufflePart struct {
	Count int
	Bytes int64
}

// ShuffleInput is one segment of a reduce task's input, in map
// completion order: either a handle to a peer-retained map output
// (Handle, opaque to this package) or controller-held pairs shipped
// inline.
type ShuffleInput struct {
	Handle any
	Pairs  []RemoteKV
}

// MapExec describes one map task for a TaskExecutor.
type MapExec struct {
	JobName  string
	TaskName string
	// File and Split identify the input block (the executor resolves
	// them to worker-readable storage).
	File     *dfs.File
	Split    int
	InputIdx int
	// NumReducers partitions shuffle output; HasReduce selects between
	// row output and pair output; RunCombine asks the worker to fold
	// the map-side combiner over its shuffle buckets.
	NumReducers int
	HasReduce   bool
	RunCombine  bool
	// Broadcasts are the job's build sides (workers rebuild the hash
	// tables from the referenced files).
	Broadcasts []Broadcast
	// Op is the serialized operator (a *wire.OpSpec); the seam keeps it
	// opaque so this package does not depend on the wire layer.
	Op any
}

// MapExecOut is a remote map task's output. CPUMap is the UDF cost of
// the map phase alone; CPUTotal additionally includes the combiner —
// the controller charges both against the virtual clock with exactly
// the local path's accrual pattern.
type MapExecOut struct {
	Rows     []data.Value // map-only jobs
	Pairs    [][]RemoteKV // shuffle jobs: one slice per partition
	CPUMap   float64
	CPUTotal float64
	// Shuffle, when non-nil, says the map output was retained away
	// from the controller (on the producing worker); ShuffleParts
	// carries the per-partition digests the accounting replays in
	// place of materialized buckets. Pairs is nil in that case.
	Shuffle      any
	ShuffleParts []ShufflePart
}

// ReduceExec describes one reduce task. Exactly one input form is
// populated: Pairs, already gathered and sorted into reduce key order
// by the controller (the classic path), or Inputs, an ordered segment
// list mixing peer-retained handles with inline pairs that the
// executor assembles and sorts worker-side.
type ReduceExec struct {
	JobName   string
	TaskName  string
	Partition int
	Pairs     []RemoteKV
	Inputs    []ShuffleInput
	Op        any
}

// ReduceExecOut is a remote reduce task's output.
type ReduceExecOut struct {
	Rows       []data.Value
	CPUSeconds float64
}

// errNoRemoteOp rejects jobs submitted without a serialized operator
// while a task executor is installed. Failing loudly here is what
// makes the differential contract trustworthy: the proc backend can
// never silently fall back to in-process execution.
func (j *Job) errNoRemoteOp() error {
	return fmt.Errorf("mapreduce: job %s has no remote op for the task executor", j.spec.Name)
}

// runMapRemote delegates the record loop of one map task to the
// executor and replays its outputs through the exact accounting the
// local path performs (input stats, CPU accrual including the
// combiner's double-add, output volume, shared counter).
func (j *Job) runMapRemote(st *mapTaskState, input Input, u cluster.Usage) (cluster.Usage, error) {
	if j.spec.RemoteOp == nil {
		return u, j.errNoRemoteOp()
	}
	out, err := j.env.Exec.ExecMap(MapExec{
		JobName:     j.spec.Name,
		TaskName:    fmt.Sprintf("%s-m%d", j.spec.Name, st.seq),
		File:        input.File,
		Split:       st.splitIdx,
		InputIdx:    st.inputIdx,
		NumReducers: j.numReducers,
		HasReduce:   j.spec.Reduce != nil,
		RunCombine:  j.spec.Combine != nil && j.spec.Reduce != nil,
		Broadcasts:  j.spec.Broadcasts,
		Op:          j.spec.RemoteOp,
	})
	if err != nil {
		return u, err
	}
	n := input.File.Block(st.splitIdx).NumRecords()
	if st.collector != nil {
		st.collector.ObserveInputs(n)
	}
	fast := j.fastPath()
	if j.spec.Reduce == nil {
		st.outRows = append(st.outRows, out.Rows...)
	} else if out.Shuffle != nil {
		// The map output was retained on the producing worker; hold the
		// handle and replay the shuffle accounting from the digests.
		if len(out.ShuffleParts) != j.numReducers {
			return u, fmt.Errorf("mapreduce: executor returned %d shuffle parts for %s, want %d",
				len(out.ShuffleParts), j.spec.Name, j.numReducers)
		}
		st.shuffle = out.Shuffle
		st.shuffleParts = out.ShuffleParts
	} else {
		if len(out.Pairs) != j.numReducers {
			return u, fmt.Errorf("mapreduce: executor returned %d partitions for %s, want %d",
				len(out.Pairs), j.spec.Name, j.numReducers)
		}
		// Rebuild the shuffle buckets; the normalized key is recomputed
		// here so downstream sort/group order is identical to a locally
		// produced bucket.
		var nkBuf []byte
		for p, pairs := range out.Pairs {
			for _, rkv := range pairs {
				kv := kvPair{key: rkv.Key, tag: rkv.Tag, rec: rkv.Rec}
				if fast {
					if b, ok := data.AppendNormKey(nkBuf[:0], rkv.Key); ok {
						kv.nk = string(b)
						nkBuf = b
					} else {
						nkBuf = b[:0]
					}
				}
				st.buckets[p] = append(st.buckets[p], kv)
			}
		}
	}
	u.Records += int64(n)
	u.CPUSeconds += out.CPUMap
	if j.spec.Combine != nil && j.spec.Reduce != nil {
		// The local path charges the map-phase CPU once and then the
		// accumulated map+combine total again after combining; replay
		// the same double-add so virtual timelines agree.
		u.CPUSeconds += out.CPUTotal
	}
	var emitted int64
	if j.spec.Reduce == nil {
		for _, rec := range st.outRows {
			sz := j.env.VirtualSize(rec)
			u.BytesWritten += sz
			if st.collector != nil {
				st.collector.ObserveOutput(rec, sz)
			}
		}
		emitted = int64(len(st.outRows))
	} else if st.shuffle != nil {
		for _, part := range st.shuffleParts {
			u.BytesShuffled += part.Bytes
			emitted += int64(part.Count)
		}
	} else {
		for _, bucket := range st.buckets {
			for _, kv := range bucket {
				u.BytesShuffled += j.env.VirtualSize(kv.rec)
			}
			emitted += int64(len(bucket))
		}
	}
	if emitted > 0 {
		j.env.Coord.Add(j.counterName, emitted)
	}
	return u, nil
}

// runReduceRemote gathers and sorts the partition's pairs exactly like
// the local path, delegates the group loop to the executor, and
// replays the output accounting.
func (j *Job) runReduceRemote(st *reduceTaskState, partition int) (cluster.Usage, error) {
	var u cluster.Usage
	if j.spec.RemoteOp == nil {
		return u, j.errNoRemoteOp()
	}
	for _, ms := range j.mapStates {
		if ms.shuffle != nil {
			return j.runReduceRemotePeer(st, partition)
		}
	}
	var pairs []kvPair
	for _, ms := range j.mapStates {
		if partition < len(ms.buckets) {
			bucket := ms.buckets[partition]
			pairs = append(pairs, bucket...)
			for _, kv := range bucket {
				u.BytesShuffled += j.env.VirtualSize(kv.rec)
			}
		}
	}
	sortPairsByKey(pairs)
	remote := make([]RemoteKV, len(pairs))
	for i, kv := range pairs {
		remote[i] = RemoteKV{Key: kv.key, Tag: kv.tag, Rec: kv.rec}
	}
	out, err := j.env.Exec.ExecReduce(ReduceExec{
		JobName:   j.spec.Name,
		TaskName:  fmt.Sprintf("%s-r%d", j.spec.Name, partition),
		Partition: partition,
		Pairs:     remote,
		Op:        j.spec.RemoteOp,
	})
	if err != nil {
		return u, err
	}
	st.outRows = append(st.outRows, out.Rows...)
	u.Records += int64(len(pairs))
	u.CPUSeconds += out.CPUSeconds
	for _, rec := range st.outRows {
		sz := j.env.VirtualSize(rec)
		u.BytesWritten += sz
		if st.collector != nil {
			st.collector.ObserveOutput(rec, sz)
		}
	}
	return u, nil
}

// runReduceRemotePeer is the direct-fetch variant: instead of
// gathering and sorting the partition controller-side, it ships an
// ordered segment list — peer-retained handles where map outputs
// stayed on their producers, inline pairs for controller-held buckets
// (maps that ran on capability-less workers) — and replays the same
// shuffle accounting from the retained digests. The worker-side
// stable sort of the concatenated segments reproduces the
// controller's gather-then-sort order exactly, so rows and virtual
// timelines match the classic path byte for byte.
func (j *Job) runReduceRemotePeer(st *reduceTaskState, partition int) (cluster.Usage, error) {
	var u cluster.Usage
	var inputs []ShuffleInput
	var count int64
	for _, ms := range j.mapStates {
		if ms.shuffle != nil {
			if partition < len(ms.shuffleParts) {
				part := ms.shuffleParts[partition]
				u.BytesShuffled += part.Bytes
				count += int64(part.Count)
				inputs = append(inputs, ShuffleInput{Handle: ms.shuffle})
			}
			continue
		}
		if partition < len(ms.buckets) {
			bucket := ms.buckets[partition]
			if len(bucket) == 0 {
				continue
			}
			for _, kv := range bucket {
				u.BytesShuffled += j.env.VirtualSize(kv.rec)
			}
			count += int64(len(bucket))
			remote := make([]RemoteKV, len(bucket))
			for i, kv := range bucket {
				remote[i] = RemoteKV{Key: kv.key, Tag: kv.tag, Rec: kv.rec}
			}
			inputs = append(inputs, ShuffleInput{Pairs: remote})
		}
	}
	out, err := j.env.Exec.ExecReduce(ReduceExec{
		JobName:   j.spec.Name,
		TaskName:  fmt.Sprintf("%s-r%d", j.spec.Name, partition),
		Partition: partition,
		Inputs:    inputs,
		Op:        j.spec.RemoteOp,
	})
	if err != nil {
		return u, err
	}
	st.outRows = append(st.outRows, out.Rows...)
	u.Records += count
	u.CPUSeconds += out.CPUSeconds
	for _, rec := range st.outRows {
		sz := j.env.VirtualSize(rec)
		u.BytesWritten += sz
		if st.collector != nil {
			st.collector.ObserveOutput(rec, sz)
		}
	}
	return u, nil
}
