// Package mapreduce implements the MapReduce execution engine over the
// simulated cluster and DFS. It provides the three job shapes DYNO
// needs:
//
//   - map-only jobs (scans with local predicates/UDFs, broadcast hash
//     joins and broadcast-join chains, pilot runs with early termination
//     and on-demand split sampling),
//   - map-reduce jobs (repartition joins, group-by, order-by),
//   - statistics collection in either phase, published per task through
//     the coordination service and merged by the client (§5.4).
//
// Jobs always materialize their output to the DFS — the natural
// re-optimization checkpoints the paper exploits.
package mapreduce

import (
	"errors"
	"fmt"
	"sort"

	"dyno/internal/cluster"
	"dyno/internal/coord"
	"dyno/internal/data"
	"dyno/internal/dfs"
	"dyno/internal/expr"
	"dyno/internal/stats"
)

// ErrBroadcastOOM is returned when a broadcast build side does not fit
// in a task slot's memory. In Jaql this aborts the query (§2.2.1: "the
// execution of the join, and hence the query fails due to an out of
// memory error").
var ErrBroadcastOOM = errors.New("mapreduce: broadcast build side exceeds slot memory")

// DefaultBytesPerReducer sizes reduce tasks from job input volume in
// the spirit of Hive's bytes-per-reducer default, set to 256 MB so that
// jobs whose shuffle volume approaches their input volume still get
// adequate reduce parallelism on the simulated cluster.
const DefaultBytesPerReducer = 256 << 20

// Gate serializes access to a cluster simulator shared by concurrent
// engine sessions. The simulator itself is single-threaded; a query
// service installs one gate per session (bound to that session's
// cancellation context) so many engines can interleave their jobs on
// one cluster at event granularity. Exclusive environments — every
// experiment and CLI run — leave Env.Gate nil and drive the simulator
// directly, preserving the legacy virtual timeline bit for bit.
type Gate interface {
	// Submit enqueues a job on the shared simulator.
	Submit(j cluster.Job) *cluster.Submission
	// Now returns the current virtual time.
	Now() float64
	// Advance charges client-side work to the virtual clock.
	Advance(d float64)
	// RunUntil drives the simulator until pred() returns true,
	// interleaving event processing with other sessions. It returns a
	// non-nil error when the session is canceled or the cluster goes
	// idle with the predicate unsatisfiable; per-job failures are
	// reported by the submissions themselves, never by RunUntil.
	RunUntil(pred func() bool) error
}

// Env bundles the shared services a job runs against.
type Env struct {
	FS    *dfs.FS
	Sim   *cluster.Sim
	Coord *coord.Service
	Reg   *expr.Registry
	// Gate, when non-nil, mediates all simulator access for this
	// environment (shared-cluster mode). Use the Env methods SubmitJob,
	// Now, Advance, and RunUntil instead of touching Sim directly in
	// any code path a gated session can reach.
	Gate Gate
	// Exec, when non-nil, delegates the per-record work of every map
	// and reduce task to an external executor (the multi-process
	// runtime backend). Jobs submitted to such an environment must
	// carry a serialized operator in Spec.RemoteOp; there is no silent
	// in-process fallback. The simulator keeps driving scheduling and
	// accounting either way, so results and virtual traces match the
	// in-process path exactly.
	Exec TaskExecutor
	// DistributedCache enables Hive-0.12-style broadcast builds: the
	// build side is loaded once per node instead of once per task
	// (§6.6).
	DistributedCache bool
	// BytesPerReducer controls reduce-task sizing; 0 means the Hive
	// default.
	BytesPerReducer int64
	// UseCombiner enables map-side partial aggregation for the
	// grouping job the compiler schedules after the join block. Off by
	// default to keep the evaluation's published numbers stable.
	UseCombiner bool
	// DisableFastPath turns off the compiled shuffle fast path
	// (normalized sort/group keys, pooled shuffle buffers, the
	// normalized-key hash-table index — see fastpath.go), forcing the
	// legacy Compare/Hash64-based implementations everywhere. Results,
	// traces, and statistics are bit-identical either way; the switch
	// exists for differential testing and as an escape hatch.
	DisableFastPath bool
	// OnCreateFile, when non-nil, is invoked with the name of every
	// output file a job in this environment creates. A query service
	// installs a per-session callback to track the session's scratch
	// files, so cleanup removes exactly those names instead of scanning
	// the whole DFS namespace. Jobs can finish on any goroutine driving
	// a shared simulator, so the callback must be safe for concurrent
	// use and must not block.
	OnCreateFile func(name string)
	// DisableBatch turns off the columnar batch arm layered on top of
	// the fast path (per-split column vectors, cached selection vectors,
	// vectorized shuffle/probe keys — see batchexec.go and
	// internal/batch), forcing record-at-a-time map functions while
	// keeping the rest of the fast path on. Mirrors DisableFastPath:
	// results, traces, and statistics are bit-identical either way.
	// Disabling the fast path disables the batch arm too — batching is
	// built on the fast path's compiled substrate.
	DisableBatch bool
}

// VirtualSize returns the virtual on-disk size of a record.
func (e *Env) VirtualSize(rec data.Value) int64 {
	return int64(float64(rec.EncodedSize()+1) * e.FS.ByteScale())
}

// ClusterConfig returns the cluster's sizing parameters. Call sites
// use this instead of reaching through Sim so the scheduling substrate
// stays an implementation detail of the environment.
func (e *Env) ClusterConfig() cluster.Config { return e.Sim.Config() }

// Shared reports whether the environment runs behind a session gate
// (its cluster is shared with other concurrent sessions).
func (e *Env) Shared() bool { return e.Gate != nil }

// SubmitJob enqueues a job, through the session gate when the cluster
// is shared.
func (e *Env) SubmitJob(j cluster.Job) *cluster.Submission {
	if e.Gate != nil {
		return e.Gate.Submit(j)
	}
	return e.Sim.Submit(j)
}

// Now returns the current virtual time.
func (e *Env) Now() float64 {
	if e.Gate != nil {
		return e.Gate.Now()
	}
	return e.Sim.Now()
}

// Advance charges client-side work (optimizer calls, statistics
// merges) to the virtual clock.
func (e *Env) Advance(d float64) {
	if e.Gate != nil {
		e.Gate.Advance(d)
		return
	}
	e.Sim.Advance(d)
}

// RunUntil drives the cluster until pred() holds. An exclusive
// environment simply drains the simulator, preserving Sim.Run's error
// semantics (the first job failure is returned); a gated environment
// steps the shared simulator until the predicate is satisfied and
// surfaces job failures only through the submissions themselves.
func (e *Env) RunUntil(pred func() bool) error {
	if e.Gate != nil {
		return e.Gate.RunUntil(pred)
	}
	return e.Sim.Run()
}

// MapCtx is handed to map functions for emitting output.
type MapCtx struct {
	job    *Job
	task   *mapTaskState
	ectx   *expr.Ctx
	builds map[string]*HashTable
	fast   bool   // normalize shuffle keys at emit time
	nkBuf  []byte // scratch for key normalization, reused across emits
}

// ExprCtx returns the expression evaluation context (UDF registry plus
// accumulated CPU cost).
func (mc *MapCtx) ExprCtx() *expr.Ctx { return mc.ectx }

// Build returns the broadcast hash table registered under the given
// name, or nil.
func (mc *MapCtx) Build(name string) *HashTable { return mc.builds[name] }

// Emit writes a record to the job's (map-only) output.
func (mc *MapCtx) Emit(rec data.Value) {
	mc.task.outRows = append(mc.task.outRows, rec)
}

// EmitKV routes a record through the shuffle, keyed for the reduce
// phase. Partition assignment is data.Hash64(key) % numReducers in both
// fast and legacy modes — it decides which reduce task (and therefore
// which output position) a record lands in, so it must never vary with
// the fast-path switch. The fast path additionally normalizes the key
// once here so downstream sorting and grouping compare strings instead
// of walking the key tree per comparison.
func (mc *MapCtx) EmitKV(key data.Value, tag string, rec data.Value) {
	p := int(data.Hash64(key) % uint64(mc.job.numReducers))
	kv := kvPair{key: key, tag: tag, rec: rec}
	if mc.fast {
		if b, ok := data.AppendNormKey(mc.nkBuf[:0], key); ok {
			kv.nk = string(b)
			mc.nkBuf = b
		} else {
			mc.nkBuf = b[:0]
		}
	}
	mc.task.buckets[p] = append(mc.task.buckets[p], kv)
}

// emitPair is EmitKV with the key's partition hash and normalized
// encoding already computed — the batch arm evaluates keys column-wise
// once per split and routes rows through here, skipping the per-record
// Hash64 and AppendNormKey work. nk must be the key's normalized
// encoding ("" when unencodable or the fast path is off) and hash its
// data.Hash64, so the pair is indistinguishable from one built by
// EmitKV.
func (mc *MapCtx) emitPair(key data.Value, nk string, tag string, rec data.Value, hash uint64) {
	p := int(hash % uint64(mc.job.numReducers))
	kv := kvPair{key: key, tag: tag, rec: rec}
	if mc.fast {
		kv.nk = nk
	}
	mc.task.buckets[p] = append(mc.task.buckets[p], kv)
}

// MapFunc processes one input record.
type MapFunc func(mc *MapCtx, rec data.Value)

// ReduceCtx is handed to reduce functions for emitting output.
type ReduceCtx struct {
	task *reduceTaskState
	ectx *expr.Ctx
}

// ExprCtx returns the expression evaluation context.
func (rc *ReduceCtx) ExprCtx() *expr.Ctx { return rc.ectx }

// Emit writes a record to the job's output.
func (rc *ReduceCtx) Emit(rec data.Value) {
	rc.task.outRows = append(rc.task.outRows, rec)
}

// Tagged is one shuffled record with its input tag (repartition joins
// tag records with the side they came from).
type Tagged struct {
	Tag string
	Rec data.Value
}

// ReduceFunc processes all records sharing a key.
type ReduceFunc func(rc *ReduceCtx, key data.Value, group []Tagged)

// Input is one mapped input of a job.
type Input struct {
	File *dfs.File
	// Splits selects block indexes to process; nil means all.
	Splits []int
	Map    MapFunc
	// BatchMap, when set and the batch arm is on, is offered each split
	// before the per-record loop. If it returns true it has fully
	// processed the split (emitting exactly what Map would have emitted,
	// in the same order); if it returns false — an unsupported predicate,
	// a demoted hash table — the per-record Map runs instead. See
	// BatchFunc in batchexec.go for the contract.
	BatchMap BatchFunc
}

// Broadcast declares a build side loaded into every map task (or once
// per node with the distributed cache).
//
// When Wrap is set, raw base-table records are wrapped as {Wrap: rec}
// before keying, so path expressions see the same row shape as scans.
// When Filter is set, it is applied while building — the Jaql pattern of
// filtering the small side during hash-table construction. The one-time
// cost of scanning the unfiltered file and evaluating the filter is
// charged once per job (the engine materializes the filtered build and
// distributes that); tasks then pay only for loading the filtered
// table. Pilot runs that consumed their whole input make this free by
// supplying the already-filtered file (§4.1's output-reuse
// optimization).
type Broadcast struct {
	Name     string
	File     *dfs.File
	KeyPaths []data.Path // build-side join key columns over the (wrapped) rows
	Wrap     string      // alias to wrap raw records with; "" = rows are stored pre-wrapped
	Filter   expr.Expr   // optional predicate applied during the build
}

// HashTable is an in-memory build side indexed by join key. The fast
// path keys buckets by the normalized key encoding (exact equality, no
// collision re-checks on probe); the legacy path, and any build side
// containing an unencodable key, keys them by data.Hash64 with
// per-candidate equality checks. Both return identical probe results:
// the rows whose key equals the probe key, in build scan order.
type HashTable struct {
	nkBuckets  map[string][]data.Value // fast: normalized key -> rows (scan order)
	scanRows   []data.Value            // fast: all rows in scan order, for unencodable probes
	buckets    map[uint64][]data.Value // legacy: key hash -> candidate rows
	keyPaths   []data.Path
	keyAccs    []*data.Accessor
	rows       int
	builtBytes int64   // virtual size of the retained (filtered) rows
	prepBytes  int64   // one-time scan volume to produce the build
	prepCPU    float64 // one-time UDF cost to produce the build
}

// buildHashTable indexes a broadcast side, wrapping and filtering as
// declared.
func buildHashTable(env *Env, b Broadcast) (*HashTable, error) {
	ht := &HashTable{keyPaths: b.KeyPaths}
	ectx := &expr.Ctx{Reg: env.Reg}
	fast := !env.DisableFastPath
	filter := b.Filter
	// When every filter column is rooted at the wrap alias, evaluate the
	// filter on the raw record before wrapping (identical semantics, see
	// expr.StripAlias) so dropped records never allocate the wrap object.
	var stripped expr.Expr
	if fast && filter != nil && b.Wrap != "" {
		if s, ok := expr.StripAlias(filter, b.Wrap); ok {
			if rec, okr := b.File.FirstRecord(); okr {
				s = expr.Compile(s, rec)
			}
			stripped = s
			filter = nil
		}
	}
	var nkBuf []byte
	for _, blk := range b.File.Blocks() {
		for _, rec := range blk.Records() {
			if stripped != nil && !stripped.Eval(ectx, rec).Truthy() {
				continue
			}
			row := rec
			if b.Wrap != "" {
				row = data.ObjectFromSorted([]data.Field{{Name: b.Wrap, Value: rec}})
			}
			if fast && ht.keyAccs == nil {
				// Compile key paths (and the build filter) against the
				// first row; accessors verify positions per record, so
				// heterogeneous rows still resolve correctly.
				ht.keyAccs = data.CompileAccessors(b.KeyPaths, row)
				if filter != nil {
					filter = expr.Compile(filter, row)
				}
			}
			if filter != nil && !filter.Eval(ectx, row).Truthy() {
				continue
			}
			ht.rows++
			ht.builtBytes += env.VirtualSize(row)
			if fast && ht.nkBuckets == nil && ht.buckets == nil {
				ht.nkBuckets = make(map[string][]data.Value)
			}
			if ht.nkBuckets != nil {
				k := ht.compositeKeyFast(row)
				b, ok := data.AppendNormKey(nkBuf[:0], k)
				nkBuf = b
				if ok {
					ht.nkBuckets[string(b)] = append(ht.nkBuckets[string(b)], row)
					ht.scanRows = append(ht.scanRows, row)
					continue
				}
				// Unencodable build key: demote the whole table to the
				// legacy hash index so probe semantics stay uniform.
				ht.demote()
			}
			if ht.buckets == nil {
				ht.buckets = make(map[uint64][]data.Value)
			}
			k := CompositeKey(row, b.KeyPaths)
			h := data.Hash64(k)
			ht.buckets[h] = append(ht.buckets[h], row)
		}
	}
	if ectx.Err != nil {
		return nil, ectx.Err
	}
	if b.Filter != nil {
		ht.prepBytes = b.File.Size()
		ht.prepCPU = ectx.CPUSeconds
	}
	return ht, nil
}

// demote converts a partially built fast index into the legacy hash
// index, preserving scan order within each hash bucket.
func (h *HashTable) demote() {
	h.buckets = make(map[uint64][]data.Value)
	for _, row := range h.scanRows {
		k := CompositeKey(row, h.keyPaths)
		hh := data.Hash64(k)
		h.buckets[hh] = append(h.buckets[hh], row)
	}
	h.nkBuckets = nil
	h.scanRows = nil
}

// compositeKeyFast is CompositeKey through the compiled key accessors.
func (h *HashTable) compositeKeyFast(row data.Value) data.Value {
	return CompositeKeyCompiled(row, h.keyAccs)
}

// Probe returns the build rows whose key equals k, in build scan order.
// The returned slice aliases the table's bucket in the common case and
// must not be mutated; probes are safe from concurrent tasks because
// buckets are read-only after the build.
func (h *HashTable) Probe(k data.Value) []data.Value {
	if h.nkBuckets != nil {
		var arr [48]byte
		if nk, ok := data.AppendNormKey(arr[:0], k); ok {
			return h.nkBuckets[string(nk)]
		}
		// Unencodable probe key (never produced by TPC-H): exhaustive
		// scan in build order, matching legacy probe results exactly.
		var out []data.Value
		for _, r := range h.scanRows {
			if data.Equal(CompositeKey(r, h.keyPaths), k) {
				out = append(out, r)
			}
		}
		return out
	}
	cands := h.buckets[data.Hash64(k)]
	if len(cands) == 0 {
		return nil
	}
	for i, r := range cands {
		if !data.Equal(CompositeKey(r, h.keyPaths), k) {
			// Collision: fall back to copying the true matches.
			out := make([]data.Value, 0, len(cands)-1)
			out = append(out, cands[:i]...)
			for _, r2 := range cands[i+1:] {
				if data.Equal(CompositeKey(r2, h.keyPaths), k) {
					out = append(out, r2)
				}
			}
			return out
		}
	}
	return cands
}

// FastIndexed reports whether the table is indexed by normalized key,
// i.e. ProbeNK answers probes for encodable keys. False for legacy
// builds and tables demoted by an unencodable build key.
func (h *HashTable) FastIndexed() bool { return h.nkBuckets != nil }

// ProbeNK returns the build rows whose key normalizes to nk, in build
// scan order. Valid only when FastIndexed() is true and nk is the
// non-empty normalized encoding of the probe key; it is then exactly
// Probe(key) without re-normalizing. The batch probe arm uses this with
// pre-computed (interned) key encodings.
func (h *HashTable) ProbeNK(nk string) []data.Value { return h.nkBuckets[nk] }

// CompositeKey evaluates the key columns over a row. A single path
// yields the bare value; multiple paths yield an array, so single- and
// multi-column join keys hash consistently on both sides.
func CompositeKey(row data.Value, paths []data.Path) data.Value {
	if len(paths) == 1 {
		return paths[0].Eval(row)
	}
	vals := make([]data.Value, len(paths))
	for i, p := range paths {
		vals[i] = p.Eval(row)
	}
	return data.Array(vals...)
}

// CompositeKeyCompiled is CompositeKey through compiled accessors; the
// accessors must have been compiled from the same paths, in order.
func CompositeKeyCompiled(row data.Value, accs []*data.Accessor) data.Value {
	if len(accs) == 1 {
		return accs[0].Eval(row)
	}
	vals := make([]data.Value, len(accs))
	for i, a := range accs {
		vals[i] = a.Eval(row)
	}
	return data.Array(vals...)
}

// Rows returns the build side's row count.
func (h *HashTable) Rows() int { return h.rows }

// Spec describes a job.
type Spec struct {
	Name   string
	Inputs []Input
	Reduce ReduceFunc // nil for map-only jobs
	// Combine, when set, runs on each map task's shuffle buckets
	// before they leave the task (the classic MapReduce combiner):
	// rows sharing a key are folded into the rows Combine emits,
	// shrinking the shuffle. The reducer must accept combiner output.
	Combine     ReduceFunc
	Output      string // DFS path for the materialized result
	NumReducers int    // 0: sized from input bytes like Hive

	// Broadcasts are build sides for map-side hash joins.
	Broadcasts []Broadcast

	// CollectStats lists attribute paths to track on the output; nil
	// disables statistics collection for the job.
	CollectStats []data.Path
	KMVSize      int

	// StopAfter > 0 enables pilot-run early termination: once the
	// job-wide output counter reaches the value, queued tasks are
	// canceled (running tasks always finish their split).
	StopAfter int64
	// MoreSplits holds reserve splits per input, added on demand when
	// the initial sample is exhausted before StopAfter is reached
	// (PILR_MT's dynamic split addition).
	MoreSplits [][]int
	// FinishIfFractionDone keeps the job running to completion when at
	// least this fraction of splits has already been processed once
	// StopAfter triggers (§4.1's selective-predicate optimization). 0
	// disables.
	FinishIfFractionDone float64

	// RemoteOp is the serialized operator (*wire.OpSpec) a task
	// executor interprets in place of the Go closures above. Required
	// when the environment has Env.Exec set; ignored otherwise. The
	// closures stay authoritative for the in-process path and must
	// describe the identical transformation.
	RemoteOp any
}

type kvPair struct {
	key data.Value
	nk  string // normalized key (fast path); "" when disabled or unencodable
	tag string
	rec data.Value
}

type mapTaskState struct {
	inputIdx int
	splitIdx int
	seq      int // submission order, for deterministic output assembly
	outRows  []data.Value
	buckets  [][]kvPair
	// shuffle, when non-nil, is the executor's handle to this task's
	// output retained away from the controller; shuffleParts carries
	// the per-partition digests that stand in for buckets.
	shuffle      any
	shuffleParts []ShufflePart
	collector    *stats.Collector
}

type reduceTaskState struct {
	partition int
	outRows   []data.Value
	collector *stats.Collector
}

// Result summarizes a finished job.
type Result struct {
	Output        *dfs.File
	Stats         *stats.Partial
	InRecords     int64
	OutRecords    int64
	MapTasks      int
	ReduceTasks   int
	SplitsTotal   int
	SplitsRun     int
	WholeInput    bool // every split of every input was processed
	OutputVirtual int64
}

// Job implements cluster.Job for a Spec.
type Job struct {
	env  *Env
	spec Spec

	numReducers int
	builds      map[string]*HashTable
	buildBytes  int64

	mapStates    []*mapTaskState
	reduceStates []*reduceTaskState
	mapsPending  int
	mapsDone     int
	reducePhase  bool
	splitsTotal  int
	seq          int
	reserve      [][]int // remaining on-demand splits per input
	counterName  string
	buildErr     error
	prepLatency  float64
	prepCharged  bool

	result *Result
	err    error
	done   bool
}

// NewJob validates a spec and returns a job ready to submit.
func NewJob(env *Env, spec Spec) (*Job, error) {
	if env == nil || env.FS == nil || env.Sim == nil || env.Coord == nil {
		return nil, errors.New("mapreduce: incomplete environment")
	}
	if spec.Name == "" {
		return nil, errors.New("mapreduce: job needs a name")
	}
	if len(spec.Inputs) == 0 {
		return nil, errors.New("mapreduce: job needs at least one input")
	}
	if spec.Output == "" {
		return nil, errors.New("mapreduce: job needs an output path")
	}
	if len(spec.MoreSplits) > 0 && len(spec.MoreSplits) != len(spec.Inputs) {
		return nil, errors.New("mapreduce: MoreSplits must align with Inputs")
	}
	j := &Job{env: env, spec: spec, counterName: "job/" + spec.Name + "/out"}
	j.numReducers = spec.NumReducers
	if j.numReducers <= 0 {
		j.numReducers = j.defaultReducers()
	}
	if len(spec.MoreSplits) > 0 {
		j.reserve = make([][]int, len(spec.MoreSplits))
		for i, s := range spec.MoreSplits {
			j.reserve[i] = append([]int(nil), s...)
		}
	}
	return j, nil
}

func (j *Job) defaultReducers() int {
	per := j.env.BytesPerReducer
	if per <= 0 {
		per = DefaultBytesPerReducer
	}
	var in int64
	for _, input := range j.spec.Inputs {
		in += input.File.Size()
	}
	n := int(in / per)
	if n < 1 {
		n = 1
	}
	if max := j.env.ClusterConfig().ReduceSlots() * 2; n > max && max > 0 {
		n = max
	}
	return n
}

// Name implements cluster.Job.
func (j *Job) Name() string { return j.spec.Name }

// Start implements cluster.Job: loads broadcast sides and creates one
// map task per selected split.
func (j *Job) Start(sub *cluster.Submission) []*cluster.Task {
	j.env.Coord.Reset(j.counterName)
	// Build broadcast hash tables once in-process; virtual load cost is
	// charged per task (or per node with the distributed cache), and
	// the one-time filtered-build preparation on the first task.
	j.builds = make(map[string]*HashTable, len(j.spec.Broadcasts))
	for _, b := range j.spec.Broadcasts {
		ht, err := buildHashTable(j.env, b)
		if err != nil {
			j.buildErr = err
			break
		}
		j.builds[b.Name] = ht
		j.buildBytes += ht.builtBytes
		// Producing a filtered build is a parallel map-only stage of
		// its own: one extra job startup plus a cluster-wide scan of
		// the unfiltered input.
		if ht.prepBytes > 0 {
			slots := float64(j.env.ClusterConfig().MapSlots())
			if slots < 1 {
				slots = 1
			}
			j.prepLatency += j.env.ClusterConfig().JobStartup +
				float64(ht.prepBytes)/(scanBps(j.env)*slots) + ht.prepCPU/slots
		}
	}
	var tasks []*cluster.Task
	for i, input := range j.spec.Inputs {
		splits := input.Splits
		if splits == nil {
			splits = make([]int, input.File.NumBlocks())
			for s := range splits {
				splits[s] = s
			}
		}
		j.splitsTotal += input.File.NumBlocks()
		for _, s := range splits {
			tasks = append(tasks, j.newMapTask(i, s))
		}
	}
	if len(j.spec.MoreSplits) == 0 {
		// Without a reserve pool the denominator for WholeInput is the
		// splits actually requested.
		j.splitsTotal = len(tasks)
	}
	j.mapsPending = len(tasks)
	if len(tasks) == 0 {
		// Empty inputs (e.g. a fully filtered intermediate): the job
		// completes immediately but must still materialize its (empty)
		// output and result.
		j.finish(sub)
	}
	return tasks
}

func (j *Job) newMapTask(inputIdx, splitIdx int) *cluster.Task {
	st := &mapTaskState{inputIdx: inputIdx, splitIdx: splitIdx, seq: j.seq}
	j.seq++
	if j.spec.Reduce != nil {
		st.buckets = make([][]kvPair, j.numReducers)
	}
	if j.spec.CollectStats != nil {
		st.collector = stats.NewCollector(j.spec.CollectStats, j.spec.KMVSize)
	}
	j.mapStates = append(j.mapStates, st)
	input := j.spec.Inputs[inputIdx]
	name := fmt.Sprintf("%s-m%d", j.spec.Name, st.seq)
	t := &cluster.Task{
		Kind: cluster.MapTask,
		Name: name,
		Run: func(tc cluster.TaskContext) (cluster.Usage, error) {
			return j.runMap(st, input, tc)
		},
	}
	if len(j.spec.Broadcasts) > 0 {
		// The one-time filtered-build preparation is charged to exactly
		// one task, and the per-node build load to the first attempt on
		// each node. Finish runs serially in dispatch order — and is
		// replayed for speculative backup attempts with the backup's
		// own TaskContext — so both charges land correctly whether Run
		// closures execute inline, on the worker pool, or not at all
		// (backups reuse the primary's usage).
		t.Finish = func(tc cluster.TaskContext, u *cluster.Usage) {
			if !j.prepCharged {
				j.prepCharged = true
				u.ExtraLatency += j.prepLatency
			}
			if rate := broadcastBps(j.env); rate > 0 {
				if j.env.DistributedCache && !tc.FirstOnNode {
					// Build already resident on this node.
				} else {
					u.ExtraLatency += float64(j.buildBytes) / rate
				}
			}
		}
	}
	return t
}

func (j *Job) runMap(st *mapTaskState, input Input, tc cluster.TaskContext) (cluster.Usage, error) {
	var u cluster.Usage
	if j.buildErr != nil {
		return u, j.buildErr
	}
	// Broadcast build: the memory check stays on the execution path,
	// but all latency charges (one-time filtered build, per-node load)
	// live in the task's Finish hook — never here, where concurrent
	// tasks would race on j.prepCharged, and where a speculative backup
	// attempt could not re-apply them for its own node.
	if len(j.spec.Broadcasts) > 0 {
		if j.buildBytes > j.env.ClusterConfig().SlotMemory {
			return u, fmt.Errorf("%w: build %d bytes > slot memory %d",
				ErrBroadcastOOM, j.buildBytes, j.env.ClusterConfig().SlotMemory)
		}
	}
	block := input.File.Block(st.splitIdx)
	u.BytesRead += input.File.BlockSizeBytes(st.splitIdx)
	if j.env.Exec != nil {
		return j.runMapRemote(st, input, u)
	}
	// Size output buffers from the split: most maps emit at most one
	// row per input record, so this avoids the append growth ladder in
	// the shuffle hot path.
	fast := j.fastPath()
	if n := block.NumRecords(); n > 0 {
		if j.spec.Reduce == nil {
			if st.outRows == nil {
				if fast {
					st.outRows = getRowSlice(n)
				} else {
					st.outRows = make([]data.Value, 0, n)
				}
			}
		} else {
			per := n/j.numReducers + 1
			for p := range st.buckets {
				if st.buckets[p] == nil {
					if fast {
						st.buckets[p] = getKVSlice(per)
					} else {
						st.buckets[p] = make([]kvPair, 0, per)
					}
				}
			}
		}
	}
	ectx := &expr.Ctx{Reg: j.env.Reg}
	mc := &MapCtx{job: j, task: st, ectx: ectx, builds: j.builds,
		fast: fast && j.spec.Reduce != nil}
	if j.batchOn() && input.BatchMap != nil && input.BatchMap(mc, block) {
		if st.collector != nil {
			st.collector.ObserveInputs(block.NumRecords())
		}
	} else {
		for _, rec := range block.Records() {
			if st.collector != nil {
				st.collector.ObserveInput()
			}
			input.Map(mc, rec)
		}
	}
	u.Records += int64(block.NumRecords())
	u.CPUSeconds += ectx.CPUSeconds
	if ectx.Err != nil {
		return u, ectx.Err
	}
	// Map-side combining before the shuffle.
	if j.spec.Combine != nil && j.spec.Reduce != nil {
		if cerr := j.combineBuckets(st, ectx); cerr != nil {
			return u, cerr
		}
		u.CPUSeconds += ectx.CPUSeconds
	}
	// Charge output volume and update the shared output counter.
	var emitted int64
	if j.spec.Reduce == nil {
		for _, rec := range st.outRows {
			sz := j.env.VirtualSize(rec)
			u.BytesWritten += sz
			if st.collector != nil {
				st.collector.ObserveOutput(rec, sz)
			}
		}
		emitted = int64(len(st.outRows))
	} else {
		for _, bucket := range st.buckets {
			for _, kv := range bucket {
				u.BytesShuffled += j.env.VirtualSize(kv.rec)
			}
			emitted += int64(len(bucket))
		}
	}
	if emitted > 0 {
		j.env.Coord.Add(j.counterName, emitted)
	}
	return u, nil
}

// combineBuckets folds each map bucket's rows per key through the
// combiner. Groups handed to the combiner are valid only for the
// duration of the call (the fast path carves them out of a pooled
// slab); combiners must copy anything they keep, as all in-repo
// combiners do.
func (j *Job) combineBuckets(st *mapTaskState, ectx *expr.Ctx) error {
	fast := j.fastPath()
	for p, bucket := range st.buckets {
		if len(bucket) == 0 {
			continue
		}
		sortPairsByKey(bucket)
		cst := &reduceTaskState{partition: p}
		rc := &ReduceCtx{task: cst, ectx: ectx}
		var combined []kvPair
		var slab []Tagged
		if fast {
			slab = getTaggedSlab(len(bucket))
		}
		for lo := 0; lo < len(bucket); {
			hi := lo + 1
			for hi < len(bucket) && samePairKey(&bucket[hi], &bucket[lo]) {
				hi++
			}
			var group []Tagged
			if fast {
				start := len(slab)
				for i := lo; i < hi; i++ {
					slab = append(slab, Tagged{Tag: bucket[i].tag, Rec: bucket[i].rec})
				}
				group = slab[start:len(slab):len(slab)]
			} else {
				group = make([]Tagged, hi-lo)
				for i := lo; i < hi; i++ {
					group[i-lo] = Tagged{Tag: bucket[i].tag, Rec: bucket[i].rec}
				}
			}
			cst.outRows = cst.outRows[:0]
			j.spec.Combine(rc, bucket[lo].key, group)
			for _, rec := range cst.outRows {
				combined = append(combined, kvPair{key: bucket[lo].key, nk: bucket[lo].nk, rec: rec})
			}
			lo = hi
		}
		if fast {
			putTaggedSlab(slab)
			putKVSlice(bucket)
		}
		st.buckets[p] = combined
	}
	return ectx.Err
}

// TaskDone implements cluster.Job.
func (j *Job) TaskDone(sub *cluster.Submission, t *cluster.Task) []*cluster.Task {
	if t.Kind == cluster.ReduceTask {
		if sub.Pending() == 0 && sub.Running() == 0 {
			j.finish(sub)
		}
		return nil
	}
	j.mapsDone++
	// Pilot-run early termination.
	if j.spec.StopAfter > 0 && j.env.Coord.Get(j.counterName) >= j.spec.StopAfter {
		frac := float64(j.mapsDone) / float64(max(j.splitsTotal, 1))
		if j.spec.FinishIfFractionDone > 0 && frac >= j.spec.FinishIfFractionDone {
			// Close to completion: let the job finish so its output is
			// reusable for the real query.
		} else {
			sub.CancelPending()
		}
	}
	if sub.Pending() == 0 && sub.Running() == 0 {
		// Map phase drained: add reserve splits if the sample target is
		// unmet, otherwise move to the reduce phase or finish.
		if j.spec.StopAfter > 0 && j.env.Coord.Get(j.counterName) < j.spec.StopAfter {
			if more := j.takeReserve(); len(more) > 0 {
				return more
			}
		}
		if j.spec.Reduce != nil {
			return j.makeReduceTasks()
		}
		j.finish(sub)
	}
	return nil
}

// takeReserve pops the next wave of on-demand sample splits. The batch
// is sized from the observed output rate (the situation-aware adaptive
// sampling of Vernica et al. the paper adopts): enough splits to reach
// the k-record target at the rate seen so far, with 25% headroom, so a
// selective filter converges in one or two extra waves.
func (j *Job) takeReserve() []*cluster.Task {
	batch := j.mapsDone
	if batch < 1 {
		batch = 1
	}
	if emitted := j.env.Coord.Get(j.counterName); emitted > 0 && j.mapsDone > 0 {
		rate := float64(emitted) / float64(j.mapsDone)
		missing := float64(j.spec.StopAfter) - float64(emitted)
		if missing > 0 && rate > 0 {
			batch = int(missing/rate*1.25) + 1
		}
	}
	var tasks []*cluster.Task
	for i := range j.reserve {
		take := batch
		if take > len(j.reserve[i]) {
			take = len(j.reserve[i])
		}
		for _, s := range j.reserve[i][:take] {
			tasks = append(tasks, j.newMapTask(i, s))
		}
		j.reserve[i] = j.reserve[i][take:]
	}
	return tasks
}

func (j *Job) makeReduceTasks() []*cluster.Task {
	j.reducePhase = true
	tasks := make([]*cluster.Task, j.numReducers)
	for p := 0; p < j.numReducers; p++ {
		st := &reduceTaskState{partition: p}
		if j.spec.CollectStats != nil {
			st.collector = stats.NewCollector(j.spec.CollectStats, j.spec.KMVSize)
		}
		j.reduceStates = append(j.reduceStates, st)
		p := p
		tasks[p] = &cluster.Task{
			Kind: cluster.ReduceTask,
			Name: fmt.Sprintf("%s-r%d", j.spec.Name, p),
			Run: func(tc cluster.TaskContext) (cluster.Usage, error) {
				return j.runReduce(st, p)
			},
		}
	}
	return tasks
}

func (j *Job) runReduce(st *reduceTaskState, partition int) (cluster.Usage, error) {
	if j.env.Exec != nil {
		return j.runReduceRemote(st, partition)
	}
	var u cluster.Usage
	fast := j.fastPath()
	// Gather this partition's pairs from all map tasks in submission
	// order, then sort by key for grouping.
	total := 0
	for _, ms := range j.mapStates {
		if partition < len(ms.buckets) {
			total += len(ms.buckets[partition])
		}
	}
	var pairs []kvPair
	if fast {
		pairs = getKVSlice(total)
	} else {
		pairs = make([]kvPair, 0, total)
	}
	for _, ms := range j.mapStates {
		if partition < len(ms.buckets) {
			bucket := ms.buckets[partition]
			pairs = append(pairs, bucket...)
			for _, kv := range bucket {
				u.BytesShuffled += j.env.VirtualSize(kv.rec)
			}
		}
	}
	sortPairsByKey(pairs)
	if fast && st.outRows == nil {
		st.outRows = getRowSlice(0)
	}
	ectx := &expr.Ctx{Reg: j.env.Reg}
	rc := &ReduceCtx{task: st, ectx: ectx}
	// Groups handed to the reducer are valid only for the duration of
	// the call (the fast path carves them out of a pooled slab);
	// reducers must copy anything they keep, as all in-repo reducers do.
	var slab []Tagged
	if fast {
		slab = getTaggedSlab(total)
	}
	for lo := 0; lo < len(pairs); {
		hi := lo + 1
		for hi < len(pairs) && samePairKey(&pairs[hi], &pairs[lo]) {
			hi++
		}
		var group []Tagged
		if fast {
			start := len(slab)
			for i := lo; i < hi; i++ {
				slab = append(slab, Tagged{Tag: pairs[i].tag, Rec: pairs[i].rec})
			}
			group = slab[start:len(slab):len(slab)]
		} else {
			group = make([]Tagged, hi-lo)
			for i := lo; i < hi; i++ {
				group[i-lo] = Tagged{Tag: pairs[i].tag, Rec: pairs[i].rec}
			}
		}
		j.spec.Reduce(rc, pairs[lo].key, group)
		lo = hi
	}
	u.Records += int64(len(pairs))
	u.CPUSeconds += ectx.CPUSeconds
	if fast {
		putTaggedSlab(slab)
		putKVSlice(pairs)
	}
	if ectx.Err != nil {
		return u, ectx.Err
	}
	for _, rec := range st.outRows {
		sz := j.env.VirtualSize(rec)
		u.BytesWritten += sz
		if st.collector != nil {
			st.collector.ObserveOutput(rec, sz)
		}
	}
	return u, nil
}

// finish assembles the output file and merged statistics.
func (j *Job) finish(sub *cluster.Submission) {
	if j.done {
		return
	}
	j.done = true
	res := &Result{
		MapTasks:    j.mapsDone,
		ReduceTasks: len(j.reduceStates),
		SplitsTotal: j.splitsTotal,
		SplitsRun:   j.mapsDone,
	}
	res.WholeInput = res.SplitsRun >= res.SplitsTotal
	w := j.env.FS.Create(j.spec.Output)
	if j.env.OnCreateFile != nil {
		j.env.OnCreateFile(j.spec.Output)
	}
	var parts []*stats.Partial
	if j.spec.Reduce == nil {
		// Deterministic map-only output: submission order.
		states := append([]*mapTaskState(nil), j.mapStates...)
		sort.Slice(states, func(a, b int) bool { return states[a].seq < states[b].seq })
		for _, st := range states {
			w.AppendAll(st.outRows)
			res.OutRecords += int64(len(st.outRows))
			if st.collector != nil {
				parts = append(parts, st.collector.Partial())
				// Stage the per-task partial location the way real tasks
				// publish their statistics file URLs.
				j.env.Coord.Publish("stats/"+j.spec.Name, fmt.Sprintf("task-m%d", st.seq))
			}
		}
	} else {
		for _, st := range j.mapStates {
			if st.collector != nil {
				res.InRecords += st.collector.Partial().InRecords
			}
		}
		for _, st := range j.reduceStates {
			w.AppendAll(st.outRows)
			res.OutRecords += int64(len(st.outRows))
			if st.collector != nil {
				parts = append(parts, st.collector.Partial())
				j.env.Coord.Publish("stats/"+j.spec.Name, fmt.Sprintf("task-r%d", st.partition))
			}
		}
	}
	if j.spec.Reduce == nil {
		for _, st := range j.mapStates {
			if st.collector != nil {
				res.InRecords += st.collector.Partial().InRecords
			}
		}
	}
	res.Output = w.Close()
	res.OutputVirtual = res.Output.Size()
	if len(parts) > 0 {
		res.Stats = stats.MergePartials(parts)
	}
	// Intermediate shuffle state held outside the controller is dead
	// once the output file exists; tell a retaining executor so worker
	// disks don't accumulate retired jobs.
	if r, ok := j.env.Exec.(JobRetirer); ok {
		r.RetireJob(j.spec.Name)
	}
	// The shuffle and output buffers are fully consumed once the job
	// finishes (the writer copied every record into its blocks); recycle
	// them for later tasks and jobs. Every Run closure executes at most
	// once (injected failures skip execution, backups replay the
	// primary's usage), so no retry can observe a recycled buffer.
	if j.fastPath() {
		for _, ms := range j.mapStates {
			for p := range ms.buckets {
				putKVSlice(ms.buckets[p])
				ms.buckets[p] = nil
			}
			putRowSlice(ms.outRows)
			ms.outRows = nil
		}
		for _, st := range j.reduceStates {
			putRowSlice(st.outRows)
			st.outRows = nil
		}
	}
	j.result = res
}

// Result returns the job's outcome after it completed.
func (j *Job) Result() (*Result, error) {
	if j.err != nil {
		return nil, j.err
	}
	if j.result == nil {
		return nil, errors.New("mapreduce: job has not completed")
	}
	return j.result, nil
}

// Submit creates the job, submits it, and returns the submission handle
// together with the job for result retrieval.
func Submit(env *Env, spec Spec) (*Job, *cluster.Submission, error) {
	j, err := NewJob(env, spec)
	if err != nil {
		return nil, nil, err
	}
	sub := env.SubmitJob(j)
	return j, sub, nil
}

// Run submits the job and drives the simulator until the job
// completes, returning the job result.
func Run(env *Env, spec Spec) (*Result, error) {
	j, sub, err := Submit(env, spec)
	if err != nil {
		return nil, err
	}
	if err := env.RunUntil(sub.Done); err != nil {
		return nil, err
	}
	if sub.Err() != nil {
		return nil, sub.Err()
	}
	return j.Result()
}

func scanBps(env *Env) float64 { return env.ClusterConfig().ScanBps }

// broadcastBps is the build-side load rate, defaulting to ScanBps.
func broadcastBps(env *Env) float64 {
	if r := env.ClusterConfig().BroadcastLoadBps; r > 0 {
		return r
	}
	return env.ClusterConfig().ScanBps
}
