package mapreduce

import (
	"testing"

	"dyno/internal/cluster"
	"dyno/internal/coord"
	"dyno/internal/data"
	"dyno/internal/dfs"
	"dyno/internal/expr"
)

// benchEnv mirrors testEnv without the *testing.T dependency.
func benchEnv() *Env {
	cfg := cluster.Config{
		Workers:              4,
		MapSlotsPerWorker:    4,
		ReduceSlotsPerWorker: 2,
		SlotMemory:           1 << 30,
		JobStartup:           10,
		TaskOverhead:         1,
		ScanBps:              1 << 20,
		ShuffleBps:           1 << 19,
		WriteBps:             1 << 20,
		Parallelism:          4,
	}
	return &Env{
		FS:    dfs.New(dfs.WithBlockSize(16<<10), dfs.WithNodes(4)),
		Sim:   cluster.New(cfg),
		Coord: coord.NewService(),
		Reg:   expr.NewRegistry(),
	}
}

func benchTable(env *Env, name, alias string, n int) *dfs.File {
	w := env.FS.Create(name)
	for i := 0; i < n; i++ {
		w.Append(data.Object(data.Field{Name: alias, Value: data.Object(
			data.Field{Name: "id", Value: data.Int(int64(i))},
			data.Field{Name: "grp", Value: data.Int(int64(i % 100))},
			data.Field{Name: "pad", Value: data.String("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")},
		)}))
	}
	return w.Close()
}

// BenchmarkRepartitionJoinJob executes a full map-reduce join (4000 x
// 400 rows through the shuffle) per iteration.
func BenchmarkRepartitionJoinJob(b *testing.B) {
	keyL := data.MustParsePath("l.grp")
	keyR := data.MustParsePath("r.grp")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		env := benchEnv()
		left := benchTable(env, "l", "l", 4000)
		right := benchTable(env, "r", "r", 400)
		b.StartTimer()
		_, err := Run(env, Spec{
			Name: "join",
			Inputs: []Input{
				{File: left, Map: func(mc *MapCtx, rec data.Value) { mc.EmitKV(keyL.Eval(rec), "L", rec) }},
				{File: right, Map: func(mc *MapCtx, rec data.Value) { mc.EmitKV(keyR.Eval(rec), "R", rec) }},
			},
			Reduce: func(rc *ReduceCtx, key data.Value, group []Tagged) {
				var rs []data.Value
				for _, g := range group {
					if g.Tag == "R" {
						rs = append(rs, g.Rec)
					}
				}
				for _, g := range group {
					if g.Tag != "L" {
						continue
					}
					for _, r := range rs {
						rc.Emit(data.MergeObjects(g.Rec, r))
					}
				}
			},
			Output: "joined",
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBroadcastJoinJob executes a map-only hash join per
// iteration.
func BenchmarkBroadcastJoinJob(b *testing.B) {
	key := data.MustParsePath("l.grp")
	buildKey := data.MustParsePath("r.id")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		env := benchEnv()
		left := benchTable(env, "l", "l", 4000)
		right := benchTable(env, "r", "r", 100)
		b.StartTimer()
		_, err := Run(env, Spec{
			Name: "bjoin",
			Inputs: []Input{{File: left, Map: func(mc *MapCtx, rec data.Value) {
				for _, m := range mc.Build("r").Probe(key.Eval(rec)) {
					mc.Emit(data.MergeObjects(rec, m))
				}
			}}},
			Broadcasts: []Broadcast{{Name: "r", File: right, KeyPaths: []data.Path{buildKey}}},
			Output:     "joined",
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShuffle isolates the shuffle hot path — EmitKV keying,
// partitioning, and bucket appends over a multi-split input — as the
// allocation guard for the preallocated outRows/bucket buffers. Run it
// with:
//
//	go test -run='^$' -bench=BenchmarkShuffle -benchtime=1x ./internal/mapreduce
func BenchmarkShuffle(b *testing.B) {
	key := data.MustParsePath("l.grp")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		env := benchEnv()
		f := benchTable(env, "l", "l", 8000)
		b.StartTimer()
		res, err := Run(env, Spec{
			Name: "shuffle",
			Inputs: []Input{{File: f, Map: func(mc *MapCtx, rec data.Value) {
				mc.EmitKV(key.Eval(rec), "L", rec)
			}}},
			Reduce: func(rc *ReduceCtx, key data.Value, group []Tagged) {
				for _, g := range group {
					rc.Emit(g.Rec)
				}
			},
			NumReducers: 8,
			Output:      "shuffled",
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.OutRecords != 8000 {
			b.Fatalf("out = %d, want 8000", res.OutRecords)
		}
	}
}

// BenchmarkPilotJob executes an early-terminating pilot run per
// iteration.
func BenchmarkPilotJob(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		env := benchEnv()
		f := benchTable(env, "t", "a", 8000)
		b.StartTimer()
		_, err := Run(env, Spec{
			Name:      "pilot",
			Inputs:    []Input{{File: f, Map: func(mc *MapCtx, rec data.Value) { mc.Emit(rec) }}},
			Output:    "sample",
			StopAfter: 512,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}
