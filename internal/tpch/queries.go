package tpch

import (
	"fmt"

	"dyno/internal/data"
	"dyno/internal/expr"
)

// UDFParams parameterize the UDFs the paper adds to the TPC-H queries
// (§6.1): Q8' gains a filtering UDF over orders ⋈ customer plus the
// correlated predicate pair on orders; Q9' gains filtering UDFs on its
// dimensions (whose selectivity Figure 6 sweeps) and a UDF over
// orders ⋈ lineitem.
type UDFParams struct {
	// Q9DimSel is the selectivity of the Q9' dimension UDFs
	// (Figure 6 sweeps 0.0001 … 1.0).
	Q9DimSel float64
	// Q8Sel is the selectivity of Q8's UDF on orders ⋈ customer.
	Q8Sel float64
	// Q9OLSel is the selectivity of Q9's UDF on orders ⋈ lineitem.
	Q9OLSel float64
	// CPUCost is the virtual seconds charged per UDF invocation.
	CPUCost float64
}

// DefaultUDFParams match the configuration used for Figures 7 and 8.
func DefaultUDFParams() UDFParams {
	return UDFParams{
		Q9DimSel: 0.01,
		Q8Sel:    0.25,
		Q9OLSel:  0.5,
		CPUCost:  0.0005,
	}
}

// keep deterministically retains a value with the given probability,
// salted so different UDFs make independent choices.
func keep(v data.Value, sel float64, salt uint64) bool {
	if sel >= 1 {
		return true
	}
	if sel <= 0 {
		return false
	}
	h := data.Hash64(v) ^ (salt * 0x9e3779b97f4a7c15)
	return float64(h%1_000_000) < sel*1_000_000
}

// RegisterUDFs installs the paper's UDFs into a registry. UDFs are
// opaque to the optimizer; only pilot runs and online statistics
// discover their selectivities.
func RegisterUDFs(reg *expr.Registry, p UDFParams) {
	if p.CPUCost <= 0 {
		p.CPUCost = 0.0005
	}
	reg.Register(expr.UDF{
		Name:    "q9_keep_part",
		CPUCost: p.CPUCost,
		Fn: func(args []data.Value) data.Value {
			return data.Bool(keep(args[0].FieldOr("p_partkey"), p.Q9DimSel, 11))
		},
	})
	reg.Register(expr.UDF{
		Name:    "q9_keep_orders",
		CPUCost: p.CPUCost,
		Fn: func(args []data.Value) data.Value {
			return data.Bool(keep(args[0].FieldOr("o_orderkey"), p.Q9DimSel, 13))
		},
	})
	reg.Register(expr.UDF{
		Name:    "q9_keep_partsupp",
		CPUCost: p.CPUCost,
		Fn: func(args []data.Value) data.Value {
			k := data.Array(args[0].FieldOr("ps_partkey"), args[0].FieldOr("ps_suppkey"))
			return data.Bool(keep(k, p.Q9DimSel, 17))
		},
	})
	reg.Register(expr.UDF{
		Name:    "q9_check_ol",
		CPUCost: p.CPUCost,
		Fn: func(args []data.Value) data.Value {
			k := data.Array(args[0].FieldOr("o_orderkey"), args[1].FieldOr("l_linenumber"))
			return data.Bool(keep(k, p.Q9OLSel, 19))
		},
	})
	reg.Register(expr.UDF{
		Name:    "q8_check_oc",
		CPUCost: p.CPUCost,
		Fn: func(args []data.Value) data.Value {
			k := data.Array(args[0].FieldOr("o_orderkey"), args[1].FieldOr("c_custkey"))
			return data.Bool(keep(k, p.Q8Sel, 23))
		},
	})
}

// queries holds the evaluation workload. Q5 is excluded, as in the
// paper, because of its cyclic join conditions; Q2's inner
// minimum-cost subquery is folded away since the engine's SQL subset
// has no subqueries — the 5-way join block the paper optimizes is
// preserved.
var queries = map[string]string{
	// Q2: 5-way join (part ⋈ partsupp ⋈ supplier ⋈ nation ⋈ region).
	"Q2": `SELECT s.s_acctbal, s.s_name, n.n_name AS nation, p.p_partkey, p.p_mfgr
		FROM part p, supplier s, partsupp ps, nation n, region r
		WHERE p.p_partkey = ps.ps_partkey AND s.s_suppkey = ps.ps_suppkey
		AND p.p_size <= 15 AND p.p_type = 'LARGE BRUSHED BRASS'
		AND s.s_nationkey = n.n_nationkey AND n.n_regionkey = r.r_regionkey
		AND r.r_name = 'EUROPE'
		ORDER BY s.s_acctbal DESC, nation, s.s_name, p.p_partkey LIMIT 100`,

	// Q7: 6-way join with a disjunctive cross-nation predicate (a
	// non-local residual over n1 × n2).
	"Q7": `SELECT n1.n_name AS supp_nation, n2.n_name AS cust_nation,
		sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue
		FROM supplier s, lineitem l, orders o, customer c, nation n1, nation n2
		WHERE s.s_suppkey = l.l_suppkey AND o.o_orderkey = l.l_orderkey
		AND c.c_custkey = o.o_custkey AND s.s_nationkey = n1.n_nationkey
		AND c.c_nationkey = n2.n_nationkey
		AND ((n1.n_name = 'FRANCE' AND n2.n_name = 'GERMANY')
		  OR (n1.n_name = 'GERMANY' AND n2.n_name = 'FRANCE'))
		AND l.l_shipdate >= 19950101 AND l.l_shipdate <= 19961231
		GROUP BY n1.n_name, n2.n_name
		ORDER BY supp_nation, cust_nation`,

	// Q8': the paper's modified Q8 — a 7-way join block over 8
	// relations, a filtering UDF on orders ⋈ customer, and the
	// correlated (o_orderpriority, o_shippriority) predicate pair.
	"Q8p": `SELECT o.o_orderdate, sum(l.l_extendedprice * (1 - l.l_discount)) AS volume
		FROM part p, supplier s, lineitem l, orders o, customer c, nation n1, nation n2, region r
		WHERE p.p_partkey = l.l_partkey AND s.s_suppkey = l.l_suppkey
		AND l.l_orderkey = o.o_orderkey AND o.o_custkey = c.c_custkey
		AND c.c_nationkey = n1.n_nationkey AND n1.n_regionkey = r.r_regionkey
		AND r.r_name = 'AMERICA' AND s.s_nationkey = n2.n_nationkey
		AND p.p_type = 'ECONOMY ANODIZED STEEL'
		AND o.o_orderdate >= 19950101 AND o.o_orderdate <= 19960630
		AND o.o_orderpriority = '1-URGENT' AND o.o_shippriority = 1
		AND q8_check_oc(o, c)
		GROUP BY o.o_orderdate ORDER BY o.o_orderdate`,

	// Q9': the paper's modified Q9 — a 5-way star on lineitem with
	// filtering UDFs on the dimensions (part, orders, partsupp) and a
	// UDF over orders ⋈ lineitem; the partsupp join is a two-column
	// equi-join.
	"Q9p": `SELECT n.n_name AS nation, sum(l.l_extendedprice * (1 - l.l_discount) - ps.ps_supplycost * l.l_quantity) AS profit
		FROM part p, supplier s, lineitem l, partsupp ps, orders o, nation n
		WHERE s.s_suppkey = l.l_suppkey AND ps.ps_suppkey = l.l_suppkey
		AND ps.ps_partkey = l.l_partkey AND p.p_partkey = l.l_partkey
		AND o.o_orderkey = l.l_orderkey AND s.s_nationkey = n.n_nationkey
		AND q9_keep_part(p) AND q9_keep_orders(o) AND q9_keep_partsupp(ps)
		AND q9_check_ol(o, l)
		GROUP BY n.n_name ORDER BY nation`,

	// Q10: 4-way join with local date/flag predicates.
	"Q10": `SELECT c.c_custkey, c.c_name, sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue, n.n_name AS nation
		FROM customer c, orders o, lineitem l, nation n
		WHERE c.c_custkey = o.o_custkey AND l.l_orderkey = o.o_orderkey
		AND o.o_orderdate >= 19931001 AND o.o_orderdate <= 19940101
		AND l.l_returnflag = 'R' AND c.c_nationkey = n.n_nationkey
		GROUP BY c.c_custkey, c.c_name, n.n_name
		ORDER BY revenue DESC LIMIT 20`,
}

// QueryNames lists the workload in the paper's order.
var QueryNames = []string{"Q2", "Q7", "Q8p", "Q9p", "Q10"}

// QuerySQL returns the SQL text of a named evaluation query.
func QuerySQL(name string) (string, error) {
	q, ok := queries[name]
	if !ok {
		return "", fmt.Errorf("tpch: unknown query %q (have %v)", name, QueryNames)
	}
	return q, nil
}

// MustQuerySQL is QuerySQL for statically known names.
func MustQuerySQL(name string) string {
	q, err := QuerySQL(name)
	if err != nil {
		panic(err)
	}
	return q
}
