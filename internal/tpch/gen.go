// Package tpch generates the TPC-H-shaped data and queries of the
// paper's evaluation (§6.1). The generator preserves what drives plan
// choice — the eight tables' foreign-key structure, relative sizes,
// value domains, and the modified queries' UDFs and correlated
// predicates — while the row counts are scaled down for a single
// machine; the DFS byte-scale presents the data at the paper's
// 1 GB-per-scale-factor volume so split counts, shuffle sizes, and
// broadcast memory checks operate at cluster scale.
package tpch

import (
	"fmt"
	"math/rand"

	"dyno/internal/data"
	"dyno/internal/dfs"
	"dyno/internal/jaql"
)

// RowsPerSF is the row count of each table per unit of scale factor.
// TPC-H proportions are preserved approximately (lineitem : orders :
// partsupp : part : customer : supplier = 600 : 150 : 40 : 20 : 15 : 2).
var RowsPerSF = map[string]float64{
	"lineitem": 600,
	"orders":   150,
	"partsupp": 40,
	"part":     20,
	"customer": 15,
	"supplier": 2,
}

// Fixed-size tables.
const (
	Nations = 25
	Regions = 5
)

// BytesPerSF is the virtual dataset volume per scale-factor unit
// (TPC-H SF is roughly 1 GB of raw data).
const BytesPerSF = 1 << 30

// Config parameterizes the generator.
type Config struct {
	// SF is the paper's scale factor (100, 300, 1000).
	SF float64
	// Scale multiplies all row counts (1.0 = the defaults above);
	// benchmarks use a smaller value to keep iterations fast — the
	// virtual byte volume stays at SF × 1 GB either way.
	Scale float64
	// Seed makes generation deterministic.
	Seed int64
}

// Rows returns the generated row count for a table.
func (c Config) Rows(table string) int {
	scale := c.Scale
	if scale <= 0 {
		scale = 1
	}
	switch table {
	case "nation":
		return Nations
	case "region":
		return Regions
	}
	n := int(RowsPerSF[table] * c.SF * scale)
	if n < 1 {
		n = 1
	}
	return n
}

var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nationNames = []string{
	"ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
	"FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
	"JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA",
	"ROMANIA", "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
	"UNITED STATES",
}

var partTypes = []string{
	"ECONOMY ANODIZED STEEL", "LARGE BRUSHED BRASS", "STANDARD POLISHED TIN",
	"SMALL PLATED COPPER", "MEDIUM BURNISHED NICKEL", "PROMO BURNISHED STEEL",
}

var priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}

var returnFlags = []string{"R", "A", "N"}

// Generate writes the eight tables into the filesystem and registers
// them in a fresh catalog. It also sets the DFS byte scale so the
// dataset presents SF × 1 GB of virtual data.
func Generate(fs *dfs.FS, cfg Config) (*jaql.Catalog, error) {
	if cfg.SF <= 0 {
		return nil, fmt.Errorf("tpch: scale factor must be positive")
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	tables := map[string][]data.Value{
		"region":   genRegion(),
		"nation":   genNation(rng),
		"supplier": genSupplier(cfg, rng),
		"customer": genCustomer(cfg, rng),
		"part":     genPart(cfg, rng),
		"partsupp": genPartsupp(cfg, rng),
		"orders":   genOrders(cfg, rng),
		"lineitem": genLineitem(cfg, rng),
	}
	var rawBytes int64
	for _, recs := range tables {
		for _, r := range recs {
			rawBytes += r.EncodedSize() + 1
		}
	}
	// Present the paper's data volume: virtual = SF × 1 GB.
	fs.SetByteScale(cfg.SF * BytesPerSF / float64(rawBytes))
	cat := jaql.NewCatalog()
	for _, name := range []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"} {
		w := fs.Create("tpch/" + name)
		w.AppendAll(tables[name])
		cat.Register(name, w.Close())
	}
	return cat, nil
}

func genRegion() []data.Value {
	out := make([]data.Value, Regions)
	for i := range out {
		out[i] = data.Object(
			data.Field{Name: "r_regionkey", Value: data.Int(int64(i))},
			data.Field{Name: "r_name", Value: data.String(regionNames[i])},
		)
	}
	return out
}

func genNation(rng *rand.Rand) []data.Value {
	out := make([]data.Value, Nations)
	for i := range out {
		out[i] = data.Object(
			data.Field{Name: "n_nationkey", Value: data.Int(int64(i))},
			data.Field{Name: "n_name", Value: data.String(nationNames[i])},
			data.Field{Name: "n_regionkey", Value: data.Int(int64(i % Regions))},
		)
	}
	return out
}

func genSupplier(cfg Config, rng *rand.Rand) []data.Value {
	n := cfg.Rows("supplier")
	out := make([]data.Value, n)
	for i := range out {
		out[i] = data.Object(
			data.Field{Name: "s_suppkey", Value: data.Int(int64(i))},
			data.Field{Name: "s_name", Value: data.String(fmt.Sprintf("Supplier#%09d", i))},
			data.Field{Name: "s_nationkey", Value: data.Int(int64(rng.Intn(Nations)))},
			data.Field{Name: "s_acctbal", Value: data.Double(float64(rng.Intn(1_100_000))/100 - 1000)},
			data.Field{Name: "s_comment", Value: data.String(comment(rng, 5))},
		)
	}
	return out
}

func genCustomer(cfg Config, rng *rand.Rand) []data.Value {
	n := cfg.Rows("customer")
	out := make([]data.Value, n)
	for i := range out {
		out[i] = data.Object(
			data.Field{Name: "c_custkey", Value: data.Int(int64(i))},
			data.Field{Name: "c_name", Value: data.String(fmt.Sprintf("Customer#%09d", i))},
			data.Field{Name: "c_nationkey", Value: data.Int(int64(rng.Intn(Nations)))},
			data.Field{Name: "c_acctbal", Value: data.Double(float64(rng.Intn(1_100_000))/100 - 1000)},
			data.Field{Name: "c_phone", Value: data.String(fmt.Sprintf("%02d-%03d-%03d-%04d", 10+rng.Intn(25), rng.Intn(1000), rng.Intn(1000), rng.Intn(10000)))},
			data.Field{Name: "c_comment", Value: data.String(comment(rng, 6))},
		)
	}
	return out
}

func genPart(cfg Config, rng *rand.Rand) []data.Value {
	n := cfg.Rows("part")
	out := make([]data.Value, n)
	for i := range out {
		out[i] = data.Object(
			data.Field{Name: "p_partkey", Value: data.Int(int64(i))},
			data.Field{Name: "p_name", Value: data.String(fmt.Sprintf("part %d %s", i, comment(rng, 2)))},
			data.Field{Name: "p_mfgr", Value: data.String(fmt.Sprintf("Manufacturer#%d", 1+rng.Intn(5)))},
			data.Field{Name: "p_type", Value: data.String(partTypes[rng.Intn(len(partTypes))])},
			data.Field{Name: "p_size", Value: data.Int(int64(1 + rng.Intn(50)))},
			data.Field{Name: "p_retailprice", Value: data.Double(900 + float64(i%200)/10)},
		)
	}
	return out
}

// psSupp deterministically maps a (part, slot) pair to its supplier,
// shared by the partsupp and lineitem generators so that every
// lineitem's (l_partkey, l_suppkey) pair exists in partsupp — the
// referential structure Q9's two-column join relies on.
func psSupp(pk, j, supps int) int {
	return (pk*31 + j*7303) % supps
}

func genPartsupp(cfg Config, rng *rand.Rand) []data.Value {
	n := cfg.Rows("partsupp")
	parts := cfg.Rows("part")
	supps := cfg.Rows("supplier")
	out := make([]data.Value, n)
	for i := range out {
		pk, j := i%parts, i/parts
		out[i] = data.Object(
			data.Field{Name: "ps_partkey", Value: data.Int(int64(pk))},
			data.Field{Name: "ps_suppkey", Value: data.Int(int64(psSupp(pk, j, supps)))},
			data.Field{Name: "ps_availqty", Value: data.Int(int64(1 + rng.Intn(9999)))},
			data.Field{Name: "ps_supplycost", Value: data.Double(1 + float64(rng.Intn(99900))/100)},
		)
	}
	return out
}

func genOrders(cfg Config, rng *rand.Rand) []data.Value {
	n := cfg.Rows("orders")
	custs := cfg.Rows("customer")
	out := make([]data.Value, n)
	for i := range out {
		prio := priorities[rng.Intn(len(priorities))]
		// The paper's correlated predicate pair (found via CORDS):
		// o_shippriority is 1 exactly for urgent/high priority orders,
		// so P(prio='1-URGENT' ∧ ship=1) = P(prio='1-URGENT'), while
		// independence estimates P(prio) × P(ship) — a 2.5x
		// underestimate.
		ship := int64(0)
		if prio == "1-URGENT" || prio == "2-HIGH" {
			ship = 1
		}
		out[i] = data.Object(
			data.Field{Name: "o_orderkey", Value: data.Int(int64(i))},
			data.Field{Name: "o_custkey", Value: data.Int(int64(rng.Intn(custs)))},
			data.Field{Name: "o_totalprice", Value: data.Double(1000 + float64(rng.Intn(45000000))/100)},
			data.Field{Name: "o_orderdate", Value: data.Int(date(rng))},
			data.Field{Name: "o_orderpriority", Value: data.String(prio)},
			data.Field{Name: "o_shippriority", Value: data.Int(ship)},
		)
	}
	return out
}

func genLineitem(cfg Config, rng *rand.Rand) []data.Value {
	n := cfg.Rows("lineitem")
	orders := cfg.Rows("orders")
	parts := cfg.Rows("part")
	supps := cfg.Rows("supplier")
	psPerPart := cfg.Rows("partsupp") / parts
	if psPerPart < 1 {
		psPerPart = 1
	}
	out := make([]data.Value, n)
	for i := range out {
		pk := rng.Intn(parts)
		out[i] = data.Object(
			data.Field{Name: "l_orderkey", Value: data.Int(int64(i % orders))},
			data.Field{Name: "l_partkey", Value: data.Int(int64(pk))},
			data.Field{Name: "l_suppkey", Value: data.Int(int64(psSupp(pk, rng.Intn(psPerPart), supps)))},
			data.Field{Name: "l_linenumber", Value: data.Int(int64(i/orders + 1))},
			data.Field{Name: "l_quantity", Value: data.Int(int64(1 + rng.Intn(50)))},
			data.Field{Name: "l_extendedprice", Value: data.Double(1000 + float64(rng.Intn(9000000))/100)},
			data.Field{Name: "l_discount", Value: data.Double(float64(rng.Intn(11)) / 100)},
			data.Field{Name: "l_tax", Value: data.Double(float64(rng.Intn(9)) / 100)},
			data.Field{Name: "l_returnflag", Value: data.String(returnFlags[rng.Intn(3)])},
			data.Field{Name: "l_shipdate", Value: data.Int(date(rng))},
		)
	}
	return out
}

// date produces YYYYMMDD ints in 1992-1998, as TPC-H does.
func date(rng *rand.Rand) int64 {
	y := 1992 + rng.Intn(7)
	m := 1 + rng.Intn(12)
	d := 1 + rng.Intn(28)
	return int64(y*10000 + m*100 + d)
}

var words = []string{
	"furiously", "quick", "pending", "silent", "ironic", "express",
	"deposits", "accounts", "requests", "packages", "theodolites",
}

func comment(rng *rand.Rand, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += words[rng.Intn(len(words))]
	}
	return out
}
