package tpch

import (
	"math"
	"testing"

	"dyno/internal/data"
	"dyno/internal/dfs"
	"dyno/internal/expr"
	"dyno/internal/naive"
	"dyno/internal/sqlparse"
)

func genSmall(t *testing.T, sf float64) (*dfs.FS, catalog) {
	t.Helper()
	fs := dfs.New(dfs.WithNodes(4))
	cat, err := Generate(fs, Config{SF: sf, Scale: 0.2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return fs, cat
}

type catalog interface {
	Lookup(name string) (*dfs.File, bool)
	Tables() []string
}

func TestGenerateTableSizes(t *testing.T) {
	_, cat := genSmall(t, 10)
	counts := map[string]int64{}
	for _, name := range cat.Tables() {
		f, _ := cat.Lookup(name)
		counts[name] = f.NumRecords()
	}
	if counts["nation"] != 25 || counts["region"] != 5 {
		t.Errorf("fixed tables: %v", counts)
	}
	// Proportions: lineitem = 4× orders = 30× part.
	if counts["lineitem"] != 4*counts["orders"] {
		t.Errorf("lineitem %d vs orders %d", counts["lineitem"], counts["orders"])
	}
	if counts["lineitem"] != 30*counts["part"] {
		t.Errorf("lineitem %d vs part %d", counts["lineitem"], counts["part"])
	}
	if counts["lineitem"] != int64(600*10*0.2) {
		t.Errorf("lineitem rows = %d", counts["lineitem"])
	}
}

func TestVirtualVolumeMatchesSF(t *testing.T) {
	fs, _ := genSmall(t, 10)
	want := 10.0 * BytesPerSF
	got := float64(fs.TotalSize())
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("virtual volume = %g, want ~%g", got, want)
	}
}

func TestForeignKeysResolve(t *testing.T) {
	_, cat := genSmall(t, 5)
	get := func(name string) []data.Value {
		f, ok := cat.Lookup(name)
		if !ok {
			t.Fatalf("missing table %s", name)
		}
		return f.AllRecords()
	}
	nations := map[int64]bool{}
	for _, n := range get("nation") {
		nations[n.FieldOr("n_nationkey").Int()] = true
		if n.FieldOr("n_regionkey").Int() >= Regions {
			t.Error("n_regionkey out of range")
		}
	}
	suppliers := map[int64]bool{}
	for _, s := range get("supplier") {
		suppliers[s.FieldOr("s_suppkey").Int()] = true
		if !nations[s.FieldOr("s_nationkey").Int()] {
			t.Error("supplier with dangling nation")
		}
	}
	customers := map[int64]bool{}
	for _, c := range get("customer") {
		customers[c.FieldOr("c_custkey").Int()] = true
	}
	orders := map[int64]bool{}
	for _, o := range get("orders") {
		orders[o.FieldOr("o_orderkey").Int()] = true
		if !customers[o.FieldOr("o_custkey").Int()] {
			t.Error("order with dangling customer")
		}
	}
	parts := map[int64]bool{}
	for _, p := range get("part") {
		parts[p.FieldOr("p_partkey").Int()] = true
	}
	ps := map[[2]int64]bool{}
	for _, r := range get("partsupp") {
		pk, sk := r.FieldOr("ps_partkey").Int(), r.FieldOr("ps_suppkey").Int()
		if !parts[pk] || !suppliers[sk] {
			t.Error("partsupp with dangling keys")
		}
		ps[[2]int64{pk, sk}] = true
	}
	for _, l := range get("lineitem") {
		if !orders[l.FieldOr("l_orderkey").Int()] {
			t.Error("lineitem with dangling order")
		}
		pk, sk := l.FieldOr("l_partkey").Int(), l.FieldOr("l_suppkey").Int()
		if !ps[[2]int64{pk, sk}] {
			t.Fatalf("lineitem (partkey=%d, suppkey=%d) missing from partsupp", pk, sk)
		}
	}
}

func TestCorrelatedOrderPredicates(t *testing.T) {
	_, cat := genSmall(t, 5)
	f, _ := cat.Lookup("orders")
	var urgent, urgentShip, ship int
	total := 0
	for _, o := range f.AllRecords() {
		total++
		u := o.FieldOr("o_orderpriority").Str() == "1-URGENT"
		s := o.FieldOr("o_shippriority").Int() == 1
		if u {
			urgent++
		}
		if s {
			ship++
		}
		if u && s {
			urgentShip++
		}
	}
	if urgent == 0 {
		t.Fatal("no urgent orders generated")
	}
	// Perfect correlation: P(urgent ∧ ship) = P(urgent), while the
	// independence estimate P(urgent)·P(ship) ≈ 0.4·P(urgent).
	if urgentShip != urgent {
		t.Errorf("urgentShip=%d urgent=%d: predicates not correlated", urgentShip, urgent)
	}
	if ship <= urgent {
		t.Error("o_shippriority=1 should also cover 2-HIGH orders")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	fs1 := dfs.New()
	fs2 := dfs.New()
	c1, err := Generate(fs1, Config{SF: 2, Scale: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	c2, err := Generate(fs2, Config{SF: 2, Scale: 0.5, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range c1.Tables() {
		f1, _ := c1.Lookup(name)
		f2, _ := c2.Lookup(name)
		a, b := f1.AllRecords(), f2.AllRecords()
		if len(a) != len(b) {
			t.Fatalf("%s row counts differ", name)
		}
		for i := range a {
			if !data.Equal(a[i], b[i]) {
				t.Fatalf("%s row %d differs", name, i)
			}
		}
	}
}

func TestGenerateRejectsBadSF(t *testing.T) {
	if _, err := Generate(dfs.New(), Config{SF: 0}); err == nil {
		t.Error("SF=0 should fail")
	}
}

func TestAllQueriesParse(t *testing.T) {
	for _, name := range QueryNames {
		sql := MustQuerySQL(name)
		if _, err := sqlparse.Parse(sql); err != nil {
			t.Errorf("%s does not parse: %v", name, err)
		}
	}
	if _, err := QuerySQL("Q99"); err == nil {
		t.Error("unknown query should error")
	}
}

func TestQueriesReturnRowsOnOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("oracle evaluation of full workload is slow")
	}
	fs := dfs.New()
	cat, err := Generate(fs, Config{SF: 30, Scale: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	reg := expr.NewRegistry()
	p := DefaultUDFParams()
	p.Q9DimSel = 0.5 // small data: keep dims populated
	RegisterUDFs(reg, p)
	for _, name := range QueryNames {
		q := sqlparse.MustParse(MustQuerySQL(name))
		rows, err := naive.Evaluate(q, cat, reg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(rows) == 0 {
			t.Errorf("%s returns no rows on the oracle; workload degenerate", name)
		}
	}
}

func TestUDFSelectivityKnob(t *testing.T) {
	reg := expr.NewRegistry()
	p := DefaultUDFParams()
	p.Q9DimSel = 0.2
	RegisterUDFs(reg, p)
	udf, ok := reg.Lookup("q9_keep_part")
	if !ok {
		t.Fatal("udf missing")
	}
	kept := 0
	const n = 5000
	for i := 0; i < n; i++ {
		rec := data.Object(data.Field{Name: "p_partkey", Value: data.Int(int64(i))})
		if udf.Fn([]data.Value{rec}).Truthy() {
			kept++
		}
	}
	got := float64(kept) / n
	if math.Abs(got-0.2) > 0.03 {
		t.Errorf("observed selectivity %v, want ~0.2", got)
	}
}

func TestUDFSelectivityExtremes(t *testing.T) {
	if keep(data.Int(1), 0, 1) {
		t.Error("sel 0 keeps nothing")
	}
	if !keep(data.Int(1), 1, 1) {
		t.Error("sel 1 keeps everything")
	}
}

func TestUDFsIndependentAcrossSalts(t *testing.T) {
	// The same key should not be systematically co-kept by different
	// UDFs.
	reg := expr.NewRegistry()
	p := DefaultUDFParams()
	p.Q9DimSel = 0.5
	RegisterUDFs(reg, p)
	up, _ := reg.Lookup("q9_keep_part")
	uo, _ := reg.Lookup("q9_keep_orders")
	agree := 0
	const n = 2000
	for i := 0; i < n; i++ {
		a := up.Fn([]data.Value{data.Object(data.Field{Name: "p_partkey", Value: data.Int(int64(i))})}).Truthy()
		b := uo.Fn([]data.Value{data.Object(data.Field{Name: "o_orderkey", Value: data.Int(int64(i))})}).Truthy()
		if a == b {
			agree++
		}
	}
	frac := float64(agree) / n
	if frac > 0.6 || frac < 0.4 {
		t.Errorf("salted UDFs agree %v of the time, want ~0.5", frac)
	}
}
