package server

import (
	"math"
	"testing"
)

func sampleOf(values ...float64) *latencySample {
	l := newLatencySample(len(values))
	for _, v := range values {
		l.add(v)
	}
	return l
}

func TestPercentileInterpolatesRank(t *testing.T) {
	// Ten samples 1..10. The old truncated rank int(p*(n-1)) reported
	// index 8 (= the exact p90) for p95; interpolation pins the
	// standard linear-interpolation values instead.
	ten := sampleOf(10, 9, 8, 7, 6, 5, 4, 3, 2, 1)
	cases := []struct {
		p    float64
		want float64
	}{
		{0.50, 5.5},
		{0.95, 9.55},
		{0.99, 9.91},
		{0, 1},
		{1, 10},
	}
	for _, c := range cases {
		if got := ten.percentile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("p%.0f over 1..10 = %v, want %v", c.p*100, got, c.want)
		}
	}

	// 100 samples 1..100: interpolated p95 sits between ranks 95 and
	// 96, strictly above the old truncated answer (95).
	hundred := newLatencySample(100)
	for i := 1; i <= 100; i++ {
		hundred.add(float64(i))
	}
	if got := hundred.percentile(0.95); math.Abs(got-95.05) > 1e-9 {
		t.Errorf("p95 over 1..100 = %v, want 95.05", got)
	}
	if got := hundred.percentile(0.50); math.Abs(got-50.5) > 1e-9 {
		t.Errorf("p50 over 1..100 = %v, want 50.5", got)
	}
}

func TestPercentileEdgeWindows(t *testing.T) {
	if got := newLatencySample(4).percentile(0.95); got != 0 {
		t.Errorf("empty window p95 = %v, want 0", got)
	}
	one := sampleOf(42)
	for _, p := range []float64{0, 0.5, 0.95, 1} {
		if got := one.percentile(p); got != 42 {
			t.Errorf("single-sample p%v = %v, want 42", p, got)
		}
	}
	two := sampleOf(10, 20)
	if got := two.percentile(0.95); math.Abs(got-19.5) > 1e-9 {
		t.Errorf("two-sample p95 = %v, want 19.5", got)
	}
}
