package server

import (
	"fmt"
	"sync"
	"testing"
)

func TestFIFOCacheEvictsAtMax(t *testing.T) {
	c := newFIFOCache[int](3)
	for i := 0; i < 5; i++ {
		c.put(fmt.Sprintf("k%d", i), 0, i)
	}
	if c.size() != 3 {
		t.Fatalf("size = %d, want 3", c.size())
	}
	for i := 0; i < 2; i++ {
		if _, ok := c.get(fmt.Sprintf("k%d", i)); ok {
			t.Errorf("k%d survived FIFO eviction", i)
		}
	}
	for i := 2; i < 5; i++ {
		if v, ok := c.get(fmt.Sprintf("k%d", i)); !ok || v != i {
			t.Errorf("k%d = %d/%v, want %d/true", i, v, ok, i)
		}
	}
}

func TestFIFOCacheOverwriteKeepsOneOrderSlot(t *testing.T) {
	c := newFIFOCache[int](2)
	c.put("a", 0, 1)
	c.put("a", 0, 2) // overwrite must not duplicate the order entry
	c.put("b", 0, 3)
	c.put("c", 0, 4) // evicts "a" (oldest), not a phantom duplicate
	if _, ok := c.get("a"); ok {
		t.Error("overwritten key not evicted as the single oldest entry")
	}
	if v, _ := c.get("b"); v != 3 {
		t.Errorf("b = %d, want 3", v)
	}
	if v, _ := c.get("c"); v != 4 {
		t.Errorf("c = %d, want 4", v)
	}
	if len(c.order) != c.size() {
		t.Errorf("order has %d entries for %d keys", len(c.order), c.size())
	}
}

func TestFIFOCacheDropsStaleEpochPut(t *testing.T) {
	c := newFIFOCache[int](8)
	if !c.put("e0|q", 0, 1) {
		t.Fatal("current-epoch put refused")
	}
	c.clear(1)
	// A query that captured epoch 0 before the invalidate finishes now:
	// its put must be dropped, not parked in the fresh cache.
	if c.put("e0|q", 0, 1) {
		t.Fatal("stale-epoch put accepted after clear")
	}
	if c.size() != 0 {
		t.Fatalf("size = %d after stale put, want 0", c.size())
	}
	if !c.put("e1|q", 1, 2) {
		t.Fatal("current-epoch put refused after clear")
	}
}

func TestFIFOCacheClearRacesPut(t *testing.T) {
	c := newFIFOCache[int](64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				c.put(fmt.Sprintf("e0|g%d-%d", g, i), 0, i)
				c.get(fmt.Sprintf("e0|g%d-%d", g, i))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for e := int64(1); e <= 50; e++ {
			c.clear(e)
		}
	}()
	wg.Wait()
	// After the final clear (epoch 50), every surviving key must have
	// been dropped: all puts carried epoch 0.
	if c.size() != 0 {
		t.Fatalf("%d stale entries survived racing clears", c.size())
	}
}
