package server

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dyno/internal/sqlparse"
	"dyno/internal/tpch"
)

func TestResultCacheSkipsExecution(t *testing.T) {
	s := newTestServer(t, nil)
	ctx := context.Background()

	r1, err := s.Execute(ctx, Request{Query: "Q8p"})
	if err != nil {
		t.Fatal(err)
	}
	if r1.ResultCacheHit {
		t.Fatal("first execution must miss the result cache")
	}

	// A result-cache hit must execute nothing: the shard's virtual
	// clock cannot move and no plan-cache activity may occur.
	sh := s.shardFor(mustNorm(t, s, "Q8p"))
	before := sh.gate.Now()
	r2, err := s.Execute(ctx, Request{Query: "Q8p"})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.ResultCacheHit {
		t.Fatal("second execution must hit the result cache")
	}
	if after := sh.gate.Now(); after != before {
		t.Fatalf("result-cache hit advanced the shard clock: %v -> %v", before, after)
	}
	if got, want := rowsKey(t, r2.Rows), rowsKey(t, r1.Rows); got != want {
		t.Fatalf("cached rows differ:\n%s\nvs\n%s", got, want)
	}

	m := s.Metrics()
	if m.ResultCacheHits != 1 || m.ResultCacheMisses != 1 {
		t.Errorf("result cache hits=%d misses=%d, want 1/1", m.ResultCacheHits, m.ResultCacheMisses)
	}
	if m.PlanCacheHits != 0 || m.PlanCacheMisses != 1 {
		t.Errorf("plan cache hits=%d misses=%d, want 0/1 (hit skipped planning entirely)",
			m.PlanCacheHits, m.PlanCacheMisses)
	}
	if m.ResultCacheSize != 1 {
		t.Errorf("result cache size = %d, want 1", m.ResultCacheSize)
	}

	// Invalidation orphans the entry: the next run executes afresh.
	s.Invalidate()
	r3, err := s.Execute(ctx, Request{Query: "Q8p"})
	if err != nil {
		t.Fatal(err)
	}
	if r3.ResultCacheHit || r3.PlanCacheHit {
		t.Fatalf("post-invalidate run hit a cache: result=%v plan=%v", r3.ResultCacheHit, r3.PlanCacheHit)
	}
	if got, want := rowsKey(t, r3.Rows), rowsKey(t, r1.Rows); got != want {
		t.Fatal("post-invalidate rows differ")
	}
}

func TestResultCacheHitHonorsMaxRows(t *testing.T) {
	s := newTestServer(t, nil)
	ctx := context.Background()
	r1, err := s.Execute(ctx, Request{Query: "Q8p"})
	if err != nil {
		t.Fatal(err)
	}
	if r1.RowCount <= 1 {
		t.Skipf("Q8p returned %d rows at this scale", r1.RowCount)
	}
	r2, err := s.Execute(ctx, Request{Query: "Q8p", MaxRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.ResultCacheHit || len(r2.Rows) != 1 || !r2.Truncated {
		t.Fatalf("hit=%v rows=%d truncated=%v, want true/1/true", r2.ResultCacheHit, len(r2.Rows), r2.Truncated)
	}
	// The cached prototype must keep its full rows for later requests.
	r3, err := s.Execute(ctx, Request{Query: "Q8p"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Rows) != r1.RowCount || r3.Truncated {
		t.Fatalf("truncated view leaked into the cache: rows=%d truncated=%v", len(r3.Rows), r3.Truncated)
	}
}

// mustNorm resolves a named query to its normalized SQL for direct
// shard inspection in tests.
func mustNorm(t *testing.T, s *Server, query string) string {
	t.Helper()
	sql, err := tpch.QuerySQL(query)
	if err != nil {
		t.Fatal(err)
	}
	norm, err := sqlparse.Normalize(sql)
	if err != nil {
		t.Fatal(err)
	}
	return norm
}

func TestFlightGroupCoalesces(t *testing.T) {
	g := newFlightGroup()
	release := make(chan struct{})
	var execs atomic.Int32
	fn := func() (*Response, error) {
		execs.Add(1)
		<-release
		return &Response{RowCount: 7}, nil
	}

	type out struct {
		resp   *Response
		err    error
		leader bool
	}
	results := make(chan out, 4)
	go func() {
		r, err, leader := g.do(context.Background(), "k", fn)
		results <- out{r, err, leader}
	}()
	// Wait for the leader to register before launching followers.
	for g.pending() == 0 {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < 2; i++ {
		go func() {
			r, err, leader := g.do(context.Background(), "k", fn)
			results <- out{r, err, leader}
		}()
	}
	// A follower with a canceled context leaves without a result.
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err, leader := g.do(canceled, "k", fn); !errors.Is(err, context.Canceled) || leader {
		t.Fatalf("canceled follower: err=%v leader=%v", err, leader)
	}

	time.Sleep(10 * time.Millisecond) // let followers park on the call
	close(release)

	leaders := 0
	for i := 0; i < 3; i++ {
		o := <-results
		if o.err != nil {
			t.Fatal(o.err)
		}
		if o.resp.RowCount != 7 {
			t.Fatalf("shared response rowCount = %d", o.resp.RowCount)
		}
		if o.leader {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("leaders = %d, want exactly 1", leaders)
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1", n)
	}
	if g.pending() != 0 {
		t.Fatal("flight entry leaked after completion")
	}
}

func TestDedupCoalescesConcurrentMisses(t *testing.T) {
	s := newTestServer(t, nil)
	const k = 4
	type out struct {
		resp *Response
		err  error
	}
	results := make(chan out, k)
	for i := 0; i < k; i++ {
		go func() {
			r, err := s.Execute(context.Background(), Request{Query: "Q8p"})
			results <- out{r, err}
		}()
	}
	var rows []string
	leaders, followers := 0, 0
	for i := 0; i < k; i++ {
		o := <-results
		if o.err != nil {
			t.Fatal(o.err)
		}
		rows = append(rows, rowsKey(t, o.resp.Rows))
		switch {
		case o.resp.Deduped:
			followers++
		case !o.resp.ResultCacheHit:
			leaders++
		}
	}
	for _, r := range rows[1:] {
		if r != rows[0] {
			t.Fatal("coalesced responses returned different rows")
		}
	}
	if leaders != 1 {
		t.Errorf("leaders = %d, want exactly 1 execution", leaders)
	}
	m := s.Metrics()
	if m.ResultCacheMisses != 1 || m.PlanCacheMisses != 1 {
		t.Errorf("resultMisses=%d planMisses=%d, want 1/1 (one execution total)",
			m.ResultCacheMisses, m.PlanCacheMisses)
	}
	if m.Deduped+m.ResultCacheHits != k-1 {
		t.Errorf("deduped=%d resultHits=%d, want them to cover the other %d requests",
			m.Deduped, m.ResultCacheHits, k-1)
	}
	if followers == 0 && m.ResultCacheHits == 0 {
		t.Error("no request coalesced or hit the cache")
	}
}

func TestShardRoutingIsStableAndIsolated(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Scale = 0.02
		c.Shards = 3
		c.MaxInFlight = 6
		c.MaxQueue = 64
	})
	if len(s.shards) != 3 {
		t.Fatalf("shards = %d, want 3", len(s.shards))
	}
	// Distinct shards share nothing: gates, simulators, filesystems,
	// catalogs, and caches are all per-shard.
	for i := 0; i < len(s.shards); i++ {
		for j := i + 1; j < len(s.shards); j++ {
			a, b := s.shards[i], s.shards[j]
			if a.gate == b.gate || a.sim == b.sim || a.fs == b.fs || a.cat == b.cat ||
				a.plans == b.plans || a.results == b.results || a.flight == b.flight {
				t.Fatalf("shards %d and %d share state", i, j)
			}
		}
	}
	// Routing is deterministic in the normalized SQL.
	for _, norm := range []string{"a", "b", "c", "select 1"} {
		first := s.shardFor(norm)
		for i := 0; i < 10; i++ {
			if s.shardFor(norm) != first {
				t.Fatalf("query %q routed to different shards", norm)
			}
		}
	}

	// Race-clean under concurrent load: the same query always lands on
	// the same shard, reported per response.
	queries := []string{"Q8p", "Q9p", "Q10"}
	var mu sync.Mutex
	shardOf := map[string]int{}
	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for _, q := range queries {
			wg.Add(1)
			go func(q string) {
				defer wg.Done()
				r, err := s.Execute(context.Background(), Request{Query: q})
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				defer mu.Unlock()
				if prev, ok := shardOf[q]; ok && prev != r.Shard {
					t.Errorf("%s served by shard %d then %d", q, prev, r.Shard)
				}
				shardOf[q] = r.Shard
			}(q)
		}
	}
	wg.Wait()
}

func TestInvalidateMidQueryDoesNotParkStaleEntries(t *testing.T) {
	s := newTestServer(t, nil)
	done := make(chan error, 1)
	go func() {
		_, err := s.Execute(context.Background(), Request{Query: "Q8p"})
		done <- err
	}()
	// Land the epoch bump while the query executes (Q8p takes well
	// over 50ms at this scale). Whichever side of the put the bump
	// lands on, no epoch-0 key may survive: put drops stale epochs and
	// clear wipes anything stored earlier.
	time.Sleep(50 * time.Millisecond)
	if e := s.Invalidate(); e != 1 {
		t.Fatalf("epoch = %d, want 1", e)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	for _, sh := range s.shards {
		for _, key := range append(sh.plans.keys(), sh.results.keys()...) {
			if strings.HasPrefix(key, "e0|") {
				t.Errorf("stale epoch-0 key %q parked in a cache", key)
			}
		}
	}
}

func TestCancellationMetricClassification(t *testing.T) {
	// Mid-execution cancel: canceled alone, not errors. The job-output
	// hook cancels deterministically after the query's first job
	// finishes — provably mid-execution, with more jobs still to run.
	s := newTestServer(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	s.hookJobOutput = cancel
	if _, err := s.Execute(ctx, Request{Query: "Q8p"}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	s.hookJobOutput = nil
	m := s.Metrics()
	if m.Canceled != 1 || m.Errors != 0 || m.Timeouts != 0 {
		t.Errorf("mid-execution cancel: canceled=%d errors=%d timeouts=%d, want 1/0/0",
			m.Canceled, m.Errors, m.Timeouts)
	}

	// A genuine failure counts under errors alone.
	if _, err := s.Execute(context.Background(), Request{SQL: "SELECT FROM WHERE 'broken"}); err == nil {
		t.Fatal("expected parse error")
	}
	m = s.Metrics()
	if m.Errors != 1 || m.Canceled != 1 || m.Timeouts != 0 {
		t.Errorf("after genuine error: errors=%d canceled=%d timeouts=%d, want 1/1/0",
			m.Errors, m.Canceled, m.Timeouts)
	}
}
