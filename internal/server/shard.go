package server

import (
	"fmt"
	"strings"
	"sync"

	"dyno/internal/cluster"
	"dyno/internal/coord"
	"dyno/internal/dfs"
	"dyno/internal/jaql"
	"dyno/internal/optimizer"
	"dyno/internal/plan"
	"dyno/internal/runtime"
	"dyno/internal/runtime/simruntime"
	"dyno/internal/stats"
	"dyno/internal/tpch"
)

// shard is one independent serving unit: its own simulated cluster,
// DFS, TPC-H catalog, gate, statistics store, and caches. Requests
// route to a shard by hash of their normalized SQL, so a given query
// text always lands on the same shard and its caches see every repeat.
// Shards share nothing but the server's UDF registry (read-only after
// construction) and the admission semaphore, so N shards run N queries
// with zero gate contention between them.
type shard struct {
	id    int
	rt    runtime.Runtime
	fs    *dfs.FS
	sim   *cluster.Sim
	gate  *Gate
	coord *coord.Service
	cat   *jaql.Catalog

	// mu guards the epoch-scoped state swapped by Invalidate. epoch is
	// the shard's view of the server epoch, snapshotted together with
	// store and memos so a session never mixes one epoch's key with
	// another's statistics.
	mu    sync.Mutex
	epoch int64
	store *stats.Store
	memos *optimizer.SharedCache

	plans   *fifoCache[plan.Node]
	results *fifoCache[*Response]
	flight  *flightGroup
}

// newShard generates the shard's private copy of the dataset and wires
// up its cluster. Every shard uses the same generation seed, so all
// shards answer any query identically — routing is purely a
// throughput concern.
func newShard(id int, cfg Config, ccfg cluster.Config) (*shard, error) {
	newRT := cfg.NewRuntime
	if newRT == nil {
		newRT = func(c cluster.Config) (runtime.Runtime, error) { return simruntime.New(c), nil }
	}
	rt, err := newRT(ccfg)
	if err != nil {
		return nil, fmt.Errorf("server: shard %d: runtime: %w", id, err)
	}
	fs := rt.FS()
	cat, err := tpch.Generate(fs, tpch.Config{SF: cfg.SF, Scale: cfg.Scale, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("server: shard %d: generate dataset: %w", id, err)
	}
	sim := rt.Sim()
	return &shard{
		id:      id,
		rt:      rt,
		fs:      fs,
		sim:     sim,
		gate:    NewGate(sim),
		coord:   rt.Coord(),
		cat:     cat,
		store:   stats.NewStore(),
		memos:   optimizer.NewSharedCache(cfg.MemoCacheSize),
		plans:   newFIFOCache[plan.Node](cfg.PlanCacheSize),
		results: newFIFOCache[*Response](cfg.ResultCacheSize),
		flight:  newFlightGroup(),
	}, nil
}

// session snapshots the epoch-scoped state one query session runs
// against.
func (sh *shard) session() (epoch int64, store *stats.Store, memos *optimizer.SharedCache) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.epoch, sh.store, sh.memos
}

// invalidate advances the shard to a new statistics epoch: fresh
// statistics store and memo cache, plan and result caches cleared.
// The caches remember the new epoch, so in-flight queries that
// captured the old one cannot park stale entries afterwards.
func (sh *shard) invalidate(epoch int64, cfg Config) {
	sh.mu.Lock()
	sh.epoch = epoch
	sh.store = stats.NewStore()
	sh.memos = optimizer.NewSharedCache(cfg.MemoCacheSize)
	sh.mu.Unlock()
	sh.plans.clear(epoch)
	sh.results.clear(epoch)
}

// scratchTracker records the DFS output files a session's jobs create,
// via mapreduce.Env.OnCreateFile. Cleanup then removes exactly those
// names: the previous implementation listed the entire namespace per
// query, an O(total files) scan (with a sort) that went quadratic at
// load-generator client counts and worse with shards. Jobs can finish
// on any goroutine driving the shared simulator, hence the mutex.
type scratchTracker struct {
	mu    sync.Mutex
	names []string
}

func (t *scratchTracker) add(name string) {
	t.mu.Lock()
	t.names = append(t.names, name)
	t.mu.Unlock()
}

// take returns the tracked names and resets the tracker.
func (t *scratchTracker) take() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	names := t.names
	t.names = nil
	return names
}

// removeScratch deletes the session's scratch DFS files (tmp/ and
// pilot/ trees under its tag; result rows were already copied out).
// Only names under the session's own prefixes are touched, mirroring
// the prefix filter the old full-namespace scan applied.
func (sh *shard) removeScratch(t *scratchTracker, tag string) {
	for _, name := range t.take() {
		if strings.HasPrefix(name, "tmp/"+tag) || strings.HasPrefix(name, "pilot/"+tag) {
			_ = sh.fs.Remove(name)
		}
	}
}
