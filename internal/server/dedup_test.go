package server

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightGroupReelectsAfterLeaderCancel: a follower that observes
// its leader failing with a cancellation error — while the follower's
// own context is still live — must not inherit the failure. It
// re-elects (here: becomes the new leader itself) and the request
// succeeds.
func TestFlightGroupReelectsAfterLeaderCancel(t *testing.T) {
	g := newFlightGroup()
	release := make(chan struct{})
	var followerExecs atomic.Int32

	// Leader: canceled mid-execution, returns its context error.
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, err, leader := g.do(context.Background(), "k", func() (*Response, error) {
			<-release
			return nil, context.Canceled
		})
		if !leader || !errors.Is(err, context.Canceled) {
			t.Errorf("leader: err=%v leader=%v", err, leader)
		}
	}()
	for g.pending() == 0 {
		time.Sleep(time.Millisecond)
	}

	// Follower with a live context, parked on the leader's call.
	type out struct {
		resp   *Response
		err    error
		leader bool
	}
	followerDone := make(chan out, 1)
	go func() {
		r, err, leader := g.do(context.Background(), "k", func() (*Response, error) {
			followerExecs.Add(1)
			return &Response{RowCount: 3}, nil
		})
		followerDone <- out{r, err, leader}
	}()
	time.Sleep(10 * time.Millisecond) // let the follower park
	close(release)
	<-leaderDone

	select {
	case o := <-followerDone:
		if o.err != nil {
			t.Fatalf("follower inherited the leader's cancellation: %v", o.err)
		}
		if !o.leader {
			t.Fatal("follower did not re-elect after leader cancellation")
		}
		if o.resp == nil || o.resp.RowCount != 3 {
			t.Fatalf("follower response = %+v, want its own execution's", o.resp)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower hung after leader cancellation")
	}
	if n := followerExecs.Load(); n != 1 {
		t.Fatalf("follower executed %d times, want 1", n)
	}
	if g.pending() != 0 {
		t.Fatal("flight entry leaked")
	}
}

// TestFlightGroupCanceledFollowerDoesNotReelect: when the leader's
// cancellation and the follower's own cancellation coincide, the
// follower reports its own context error instead of looping.
func TestFlightGroupCanceledFollowerDoesNotReelect(t *testing.T) {
	g := newFlightGroup()
	release := make(chan struct{})
	go func() {
		g.do(context.Background(), "k", func() (*Response, error) {
			<-release
			return nil, context.Canceled
		})
	}()
	for g.pending() == 0 {
		time.Sleep(time.Millisecond)
	}

	fctx, fcancel := context.WithCancel(context.Background())
	followerDone := make(chan error, 1)
	go func() {
		_, err, _ := g.do(fctx, "k", func() (*Response, error) {
			t.Error("canceled follower executed the query")
			return nil, nil
		})
		followerDone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	fcancel()
	close(release)

	select {
	case err := <-followerDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("canceled follower: err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canceled follower hung")
	}
}

// TestFlightGroupFollowerInheritsRealErrors: re-election is only for
// cancellations. A leader failing on the query's own merits shares
// that error with its followers — retrying would fail identically.
func TestFlightGroupFollowerInheritsRealErrors(t *testing.T) {
	g := newFlightGroup()
	release := make(chan struct{})
	boom := errors.New("boom")
	var execs atomic.Int32
	go func() {
		g.do(context.Background(), "k", func() (*Response, error) {
			execs.Add(1)
			<-release
			return nil, boom
		})
	}()
	for g.pending() == 0 {
		time.Sleep(time.Millisecond)
	}

	followerDone := make(chan error, 1)
	go func() {
		_, err, leader := g.do(context.Background(), "k", func() (*Response, error) {
			execs.Add(1)
			return nil, boom
		})
		if leader {
			t.Error("follower became leader on a non-cancellation error")
		}
		followerDone <- err
	}()
	time.Sleep(10 * time.Millisecond)
	close(release)

	select {
	case err := <-followerDone:
		if !errors.Is(err, boom) {
			t.Fatalf("follower: err = %v, want the leader's error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("follower hung")
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1 (no re-election on real errors)", n)
	}
}
