package server

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"dyno/internal/data"
	"dyno/internal/tpch"
)

// testConfig is small enough that a query answers in well under a
// second of wall clock.
func testConfig() Config {
	return Config{SF: 10, Scale: 0.05, Seed: 2014, MaxInFlight: 4, MaxQueue: 16}
}

func newTestServer(t *testing.T, mutate func(*Config)) *Server {
	t.Helper()
	cfg := testConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// rowsKey renders a result canonically: data.Value marshals with
// sorted fields, so equal results produce equal strings.
func rowsKey(t *testing.T, rows []data.Value) string {
	t.Helper()
	var sb strings.Builder
	for _, r := range rows {
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		sb.Write(b)
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestPlanCacheHitSkipsOptimization(t *testing.T) {
	// Disable the result cache so the repeat reaches the plan cache
	// instead of being served without executing at all.
	s := newTestServer(t, func(c *Config) { c.DisableResultCache = true })
	ctx := context.Background()

	r1, err := s.Execute(ctx, Request{Query: "Q8p"})
	if err != nil {
		t.Fatal(err)
	}
	if r1.PlanCacheHit {
		t.Fatal("first execution must miss the plan cache")
	}
	if r1.PilotJobs == 0 {
		t.Fatal("first execution should run pilots")
	}
	if r1.OptimizeSec <= 0 {
		t.Fatal("first execution should spend optimizer time")
	}

	// Same query, different whitespace and keyword case (literals and
	// identifiers untouched): normalization must still hit.
	sql, _ := tpch.QuerySQL("Q8p")
	mangled := "  select" + strings.TrimPrefix(
		strings.ReplaceAll(strings.TrimSpace(sql), "\n", " \n\t "), "SELECT") + " "
	r2, err := s.Execute(ctx, Request{SQL: mangled})
	if err != nil {
		t.Fatal(err)
	}
	if !r2.PlanCacheHit {
		t.Fatal("second execution must hit the plan cache")
	}
	if r2.PilotJobs != 0 {
		t.Fatalf("plan-cache hit ran %d pilot jobs", r2.PilotJobs)
	}
	if r2.OptimizeSec != 0 {
		t.Fatalf("plan-cache hit spent %vs optimizing", r2.OptimizeSec)
	}
	if got, want := rowsKey(t, r2.Rows), rowsKey(t, r1.Rows); got != want {
		t.Fatalf("cached-plan rows differ:\n%s\nvs\n%s", got, want)
	}

	m := s.Metrics()
	if m.PlanCacheHits != 1 || m.PlanCacheMisses != 1 {
		t.Errorf("metrics hits=%d misses=%d, want 1/1", m.PlanCacheHits, m.PlanCacheMisses)
	}
	if m.PlanCacheSize != 1 {
		t.Errorf("plan cache size = %d, want 1", m.PlanCacheSize)
	}
}

func TestPlanCacheKeyedByVariantAndStrategy(t *testing.T) {
	s := newTestServer(t, nil)
	ctx := context.Background()
	if _, err := s.Execute(ctx, Request{Query: "Q8p", Variant: "DYNOPT"}); err != nil {
		t.Fatal(err)
	}
	r, err := s.Execute(ctx, Request{Query: "Q8p", Variant: "BESTSTATIC"})
	if err != nil {
		t.Fatal(err)
	}
	if r.PlanCacheHit {
		t.Fatal("different variant must not hit the DYNOPT entry")
	}
}

func TestStatsCacheReusesPilotResults(t *testing.T) {
	// Disable the result and plan caches so the second execution
	// optimizes again and exercises only statistics reuse.
	s := newTestServer(t, func(c *Config) {
		c.DisablePlanCache = true
		c.DisableResultCache = true
	})
	ctx := context.Background()

	r1, err := s.Execute(ctx, Request{Query: "Q8p"})
	if err != nil {
		t.Fatal(err)
	}
	if r1.PilotJobs == 0 || r1.StatsReused != 0 {
		t.Fatalf("first run: pilots=%d reused=%d", r1.PilotJobs, r1.StatsReused)
	}

	r2, err := s.Execute(ctx, Request{Query: "Q8p"})
	if err != nil {
		t.Fatal(err)
	}
	if r2.PlanCacheHit {
		t.Fatal("plan cache is disabled")
	}
	if r2.PilotJobs != 0 {
		t.Fatalf("second run executed %d pilot jobs despite cached statistics", r2.PilotJobs)
	}
	if r2.StatsReused == 0 {
		t.Fatal("second run reused no leaf statistics")
	}
	if got, want := rowsKey(t, r2.Rows), rowsKey(t, r1.Rows); got != want {
		t.Fatalf("rows differ across statistics reuse:\n%s\nvs\n%s", got, want)
	}

	m := s.Metrics()
	if m.StatsReusedLeaves == 0 || m.StatsStoreLeaves == 0 {
		t.Errorf("metrics: reused=%d storeLeaves=%d", m.StatsReusedLeaves, m.StatsStoreLeaves)
	}
}

func TestInvalidateForcesFreshStatistics(t *testing.T) {
	s := newTestServer(t, nil)
	ctx := context.Background()
	if _, err := s.Execute(ctx, Request{Query: "Q8p"}); err != nil {
		t.Fatal(err)
	}
	if e := s.Invalidate(); e != 1 {
		t.Fatalf("epoch after invalidate = %d, want 1", e)
	}
	r, err := s.Execute(ctx, Request{Query: "Q8p"})
	if err != nil {
		t.Fatal(err)
	}
	if r.PlanCacheHit {
		t.Fatal("invalidate must clear the plan cache")
	}
	if r.PilotJobs == 0 || r.StatsReused != 0 {
		t.Fatalf("post-invalidate run: pilots=%d reused=%d, want fresh pilots", r.PilotJobs, r.StatsReused)
	}
}

func TestAdmissionRejectsWhenQueueFull(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxInFlight = 1; c.MaxQueue = 1 })
	// Simulate one executing and one queued request.
	s.waiting.Add(2)
	s.sem <- struct{}{}
	defer func() { s.waiting.Add(-2); <-s.sem }()

	_, err := s.Execute(context.Background(), Request{Query: "Q8p"})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if s.Metrics().Rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", s.Metrics().Rejected)
	}
}

func TestQueuedRequestHonorsCancellation(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxInFlight = 1; c.MaxQueue = 4 })
	s.waiting.Add(1)
	s.sem <- struct{}{} // occupy the only slot
	defer func() { s.waiting.Add(-1); <-s.sem }()

	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(10 * time.Millisecond); cancel() }()
	_, err := s.Execute(ctx, Request{Query: "Q8p"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s.Metrics().Canceled != 1 {
		t.Errorf("canceled counter = %d, want 1", s.Metrics().Canceled)
	}
}

func TestQueryTimeout(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.QueryTimeout = time.Nanosecond })
	_, err := s.Execute(context.Background(), Request{Query: "Q8p"})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	m := s.Metrics()
	if m.Timeouts != 1 || m.Errors != 0 || m.Canceled != 0 {
		t.Errorf("timeouts=%d errors=%d canceled=%d, want 1/0/0 (disjoint classes)",
			m.Timeouts, m.Errors, m.Canceled)
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t, nil)
	ctx := context.Background()
	cases := []Request{
		{},                                 // neither sql nor query
		{Query: "Q99"},                     // unknown named query
		{Query: "Q8p", Variant: "WRONG"},   // unknown variant
		{Query: "Q8p", Strategy: "UNC-9"},  // unknown strategy
		{SQL: "SELECT FROM WHERE 'broken"}, // lexer error
	}
	for i, req := range cases {
		if _, err := s.Execute(ctx, req); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestSessionScratchIsCleanedUp(t *testing.T) {
	s := newTestServer(t, nil)
	if _, err := s.Execute(context.Background(), Request{Query: "Q8p"}); err != nil {
		t.Fatal(err)
	}
	for _, sh := range s.shards {
		for _, name := range sh.fs.List() {
			if strings.HasPrefix(name, "tmp/") || strings.HasPrefix(name, "pilot/") {
				t.Errorf("scratch file %q survived the session", name)
			}
		}
	}
}

func TestMaxRowsTruncation(t *testing.T) {
	s := newTestServer(t, nil)
	r, err := s.Execute(context.Background(), Request{Query: "Q8p", MaxRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.RowCount <= 1 {
		t.Skipf("Q8p returned %d rows at this scale", r.RowCount)
	}
	if len(r.Rows) != 1 || !r.Truncated {
		t.Errorf("rows=%d truncated=%v, want 1/true", len(r.Rows), r.Truncated)
	}
}

func TestMemoCacheReusedAcrossQueries(t *testing.T) {
	// Disable the result and plan caches so repeated queries
	// re-optimize and exercise the shared memo; statistics reuse stays
	// on so the second query's leaves carry identical fingerprints.
	s := newTestServer(t, func(c *Config) {
		c.DisablePlanCache = true
		c.DisableResultCache = true
	})
	ctx := context.Background()

	r1, err := s.Execute(ctx, Request{Query: "Q8p"})
	if err != nil {
		t.Fatal(err)
	}
	if m := s.Metrics(); m.MemoCacheGroups == 0 {
		t.Fatal("first query exported no memo groups")
	}

	r2, err := s.Execute(ctx, Request{Query: "Q8p"})
	if err != nil {
		t.Fatal(err)
	}
	// The first run can only reuse groups within its own session
	// (across DYNOPT rounds); the second also imports the shared
	// memo, so it must reuse strictly more.
	if r2.MemoGroupsReused <= r1.MemoGroupsReused {
		t.Errorf("memo reuse did not grow across queries: %d then %d",
			r1.MemoGroupsReused, r2.MemoGroupsReused)
	}
	if got, want := rowsKey(t, r2.Rows), rowsKey(t, r1.Rows); got != want {
		t.Fatalf("rows differ under memo reuse:\n%s\nvs\n%s", got, want)
	}

	// Invalidation drops the shared memo with the statistics epoch:
	// the next run repeats the first run's behavior exactly.
	s.Invalidate()
	r3, err := s.Execute(ctx, Request{Query: "Q8p"})
	if err != nil {
		t.Fatal(err)
	}
	if r3.MemoGroupsReused != r1.MemoGroupsReused {
		t.Errorf("post-invalidate reuse = %d, want %d (fresh cache)",
			r3.MemoGroupsReused, r1.MemoGroupsReused)
	}

	// The kill switch pins reuse at the session-local level.
	off := newTestServer(t, func(c *Config) {
		c.DisablePlanCache = true
		c.DisableResultCache = true
		c.DisableMemoCache = true
	})
	if _, err := off.Execute(ctx, Request{Query: "Q8p"}); err != nil {
		t.Fatal(err)
	}
	r5, err := off.Execute(ctx, Request{Query: "Q8p"})
	if err != nil {
		t.Fatal(err)
	}
	if r5.MemoGroupsReused != r1.MemoGroupsReused {
		t.Errorf("DisableMemoCache run reused %d groups, want session-local %d",
			r5.MemoGroupsReused, r1.MemoGroupsReused)
	}
	if got, want := rowsKey(t, r5.Rows), rowsKey(t, r2.Rows); got != want {
		t.Fatal("rows differ with the memo cache disabled")
	}
}
