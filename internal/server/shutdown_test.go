package server

import (
	"context"
	"errors"
	goruntime "runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestShutdownDrainsWithoutLeakingGoroutines drives concurrent
// queries, shuts the server down mid-flight, and requires that every
// Execute returns (with nil, cancellation, or ErrShuttingDown — never
// a hang), new requests fail fast, and the goroutine count settles
// back to the pre-server baseline. Run under -race this also shakes
// out unsynchronized shutdown paths.
func TestShutdownDrainsWithoutLeakingGoroutines(t *testing.T) {
	baseline := goruntime.NumGoroutine()

	// Disable the serving tiers so every request genuinely executes:
	// cached or coalesced repeats would finish too fast to be caught
	// in flight by the shutdown.
	s := newTestServer(t, func(c *Config) {
		c.DisableResultCache = true
		c.DisableDedup = true
		c.MaxInFlight = 4
		c.MaxQueue = 16
	})

	const clients = 6
	var (
		wg         sync.WaitGroup
		completed  atomic.Int64
		unexpected = make(chan error, clients)
	)
	queries := []string{"Q10", "Q2", "Q7"}
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; ; i++ {
				_, err := s.Execute(context.Background(), Request{Query: queries[(c+i)%len(queries)]})
				if err == nil {
					completed.Add(1)
					continue
				}
				// The only acceptable terminal outcomes once shutdown
				// begins: the query's context was canceled under it, or
				// admission refused it.
				if !errors.Is(err, context.Canceled) && !errors.Is(err, ErrShuttingDown) {
					unexpected <- err
				}
				return
			}
		}(c)
	}

	// Let the clients get queries genuinely in flight first.
	deadline := time.Now().Add(5 * time.Second)
	for completed.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(shutCtx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// Shutdown returning means the wait group drained, so every client
	// must exit promptly.
	clientsDone := make(chan struct{})
	go func() { wg.Wait(); close(clientsDone) }()
	select {
	case <-clientsDone:
	case <-time.After(10 * time.Second):
		t.Fatal("clients still blocked in Execute after Shutdown returned")
	}
	close(unexpected)
	for err := range unexpected {
		t.Errorf("unexpected Execute error during shutdown: %v", err)
	}

	if _, err := s.Execute(context.Background(), Request{Query: "Q10"}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Execute after Shutdown: err = %v, want ErrShuttingDown", err)
	}

	// A second Shutdown is a cheap no-op.
	if err := s.Shutdown(shutCtx); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}

	// Everything the server and its queries spawned must have exited.
	// Poll: exits are asynchronous with Execute's return.
	for waited := time.Duration(0); ; waited += 10 * time.Millisecond {
		if goruntime.NumGoroutine() <= baseline+2 {
			break
		}
		if waited > 5*time.Second {
			buf := make([]byte, 1<<20)
			n := goruntime.Stack(buf, true)
			t.Fatalf("goroutines did not settle: baseline %d, now %d\n%s",
				baseline, goruntime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShutdownCancelsQueuedRequests: a request parked in the
// admission queue (not yet executing) must also observe shutdown and
// fail fast instead of waiting for a slot that will never free.
func TestShutdownCancelsQueuedRequests(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.DisableResultCache = true
		c.DisableDedup = true
		c.MaxInFlight = 1
		c.MaxQueue = 8
	})

	// Occupy the single slot with a query held mid-execution: the hook
	// parks it until the test releases it, so the slot cannot free.
	inFlight := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.hookJobOutput = func() {
		once.Do(func() { close(inFlight) })
		<-release
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Execute(context.Background(), Request{Query: "Q10"})
	}()
	select {
	case <-inFlight:
	case <-time.After(10 * time.Second):
		t.Fatal("first query never reached execution")
	}

	// Park a second request in the queue behind it.
	queued := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := s.Execute(context.Background(), Request{Query: "Q2"})
		queued <- err
	}()
	time.Sleep(20 * time.Millisecond) // let it reach the admission select

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- s.Shutdown(shutCtx) }()

	// The queued request must fail fast even while the slot holder is
	// still draining.
	select {
	case err := <-queued:
		if !errors.Is(err, ErrShuttingDown) && !errors.Is(err, context.Canceled) {
			t.Fatalf("queued request: err = %v, want ErrShuttingDown or cancellation", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("queued request hung after Shutdown began")
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
}
