package server

import (
	"sort"
	"sync"
	"sync/atomic"
)

// counters aggregates the service's monotonic counters.
type counters struct {
	queries  atomic.Int64 // completed successfully
	errors   atomic.Int64 // failed for any reason
	rejected atomic.Int64 // turned away by admission control
	timeouts atomic.Int64 // canceled by the per-query timeout
	canceled atomic.Int64 // canceled by the client

	planHits   atomic.Int64
	planMisses atomic.Int64

	statsReused atomic.Int64 // leaves whose statistics came from the shared store
	pilotJobs   atomic.Int64 // pilot jobs actually executed
	memoReused  atomic.Int64 // optimizer groups answered from reused memo state
}

// latencySample keeps the last up-to-cap query latencies for
// percentile estimation (a ring buffer; percentiles are over the
// retained window).
type latencySample struct {
	mu  sync.Mutex
	cap int
	buf []float64 // milliseconds
	idx int
}

func newLatencySample(cap int) *latencySample {
	if cap <= 0 {
		cap = 4096
	}
	return &latencySample{cap: cap}
}

func (l *latencySample) add(ms float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, ms)
		return
	}
	l.buf[l.idx] = ms
	l.idx = (l.idx + 1) % l.cap
}

// percentile returns the p-th percentile (0..1) of the retained
// window, or 0 when empty.
func (l *latencySample) percentile(p float64) float64 {
	l.mu.Lock()
	sorted := append([]float64(nil), l.buf...)
	l.mu.Unlock()
	if len(sorted) == 0 {
		return 0
	}
	sort.Float64s(sorted)
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// MetricsSnapshot is the JSON shape of GET /metrics.
type MetricsSnapshot struct {
	UptimeSec float64 `json:"uptimeSec"`
	Epoch     int64   `json:"epoch"`

	Queries  int64 `json:"queries"`
	Errors   int64 `json:"errors"`
	Rejected int64 `json:"rejected"`
	Timeouts int64 `json:"timeouts"`
	Canceled int64 `json:"canceled"`
	InFlight int   `json:"inFlight"`
	Queued   int   `json:"queued"`

	PlanCacheHits   int64 `json:"planCacheHits"`
	PlanCacheMisses int64 `json:"planCacheMisses"`
	PlanCacheSize   int   `json:"planCacheSize"`

	StatsReusedLeaves int64 `json:"statsReusedLeaves"`
	PilotJobs         int64 `json:"pilotJobs"`
	StatsStoreLeaves  int   `json:"statsStoreLeaves"`

	MemoCacheGroups  int   `json:"memoCacheGroups"`
	MemoGroupsReused int64 `json:"memoGroupsReused"`

	P50Millis float64 `json:"p50Millis"`
	P95Millis float64 `json:"p95Millis"`

	VirtualSec float64 `json:"virtualSec"` // shared cluster clock
}
