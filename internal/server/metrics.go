package server

import (
	"sort"
	"sync"
	"sync/atomic"
)

// counters aggregates the service's monotonic counters.
//
// Outcome classification: every Execute call increments exactly one of
// queries, rejected, timeouts, canceled, or errors. timeouts counts
// queries that exceeded a deadline (the per-query timeout or the
// caller's own); canceled counts queries the client canceled, whether
// still queued or already executing; errors counts only the remaining
// non-cancellation failures (bad requests, execution errors). The
// three failure classes are disjoint.
type counters struct {
	queries  atomic.Int64 // completed successfully
	errors   atomic.Int64 // failed (excluding timeouts and cancellations)
	rejected atomic.Int64 // turned away by admission control
	timeouts atomic.Int64 // exceeded a deadline
	canceled atomic.Int64 // canceled by the client (queued or executing)

	resultHits   atomic.Int64 // served from the result cache, nothing executed
	resultMisses atomic.Int64 // led an actual execution (result cache enabled)
	deduped      atomic.Int64 // coalesced onto a concurrent identical execution

	planHits   atomic.Int64
	planMisses atomic.Int64

	statsReused atomic.Int64 // leaves whose statistics came from the shared store
	pilotJobs   atomic.Int64 // pilot jobs actually executed
	memoReused  atomic.Int64 // optimizer groups answered from reused memo state
}

// latencySample keeps the last up-to-cap query latencies for
// percentile estimation (a ring buffer; percentiles are over the
// retained window).
type latencySample struct {
	mu  sync.Mutex
	cap int
	buf []float64 // milliseconds
	idx int
}

func newLatencySample(cap int) *latencySample {
	if cap <= 0 {
		cap = 4096
	}
	return &latencySample{cap: cap}
}

func (l *latencySample) add(ms float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, ms)
		return
	}
	l.buf[l.idx] = ms
	l.idx = (l.idx + 1) % l.cap
}

// percentile returns the p-th percentile (0..1) of the retained
// window, or 0 when empty.
func (l *latencySample) percentile(p float64) float64 {
	l.mu.Lock()
	sorted := append([]float64(nil), l.buf...)
	l.mu.Unlock()
	return Percentile(sorted, p)
}

// Percentile sorts values in place and returns their p-th percentile
// (0..1) with linear interpolation between adjacent ranks. Truncating
// the fractional rank — the previous behavior — reported ~p90 when
// asked for p95 over small windows (10 samples → index 8, the exact
// 90th percentile). Exported because the experiment harnesses compute
// the same percentiles over their own latency samples.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sort.Float64s(values)
	if p <= 0 {
		return values[0]
	}
	if p >= 1 {
		return values[len(values)-1]
	}
	rank := p * float64(len(values)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(values) {
		return values[lo]
	}
	return values[lo] + frac*(values[lo+1]-values[lo])
}

// MetricsSnapshot is the JSON shape of GET /metrics.
type MetricsSnapshot struct {
	UptimeSec float64 `json:"uptimeSec"`
	Epoch     int64   `json:"epoch"`
	Shards    int     `json:"shards"`

	Queries  int64 `json:"queries"`
	Errors   int64 `json:"errors"`
	Rejected int64 `json:"rejected"`
	Timeouts int64 `json:"timeouts"`
	Canceled int64 `json:"canceled"`
	InFlight int   `json:"inFlight"`
	Queued   int   `json:"queued"`

	ResultCacheHits   int64 `json:"resultCacheHits"`
	ResultCacheMisses int64 `json:"resultCacheMisses"`
	ResultCacheSize   int   `json:"resultCacheSize"`
	Deduped           int64 `json:"deduped"`

	PlanCacheHits   int64 `json:"planCacheHits"`
	PlanCacheMisses int64 `json:"planCacheMisses"`
	PlanCacheSize   int   `json:"planCacheSize"`

	StatsReusedLeaves int64 `json:"statsReusedLeaves"`
	PilotJobs         int64 `json:"pilotJobs"`
	StatsStoreLeaves  int   `json:"statsStoreLeaves"`

	MemoCacheGroups  int   `json:"memoCacheGroups"`
	MemoGroupsReused int64 `json:"memoGroupsReused"`

	P50Millis float64 `json:"p50Millis"`
	P95Millis float64 `json:"p95Millis"`
	P99Millis float64 `json:"p99Millis"`

	VirtualSec float64 `json:"virtualSec"` // most-advanced shard clock
}
