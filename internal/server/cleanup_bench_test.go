package server

import (
	"fmt"
	"strings"
	"testing"

	"dyno/internal/dfs"
)

// The cleanup benchmarks compare the legacy full-namespace scan
// (List() + prefix match per query) against tracked removal on a DFS
// holding many files — the situation a load generator creates, where
// per-query cleanup cost must not grow with the namespace. Both arms
// recreate the session's scratch files each iteration, so the delta
// between them is the cleanup strategy itself.

const benchNamespaceFiles = 4096

func benchScratchNames(tag string) []string {
	return []string{
		"tmp/" + tag + "q/j1", "tmp/" + tag + "q/j2", "tmp/" + tag + "q/final",
		"pilot/" + tag + "q/a", "pilot/" + tag + "q/b", "pilot/" + tag + "q/c",
	}
}

func benchNamespace(b *testing.B) *dfs.FS {
	b.Helper()
	fs := dfs.New()
	for i := 0; i < benchNamespaceFiles; i++ {
		fs.Create(fmt.Sprintf("data/table%04d/part", i))
	}
	return fs
}

func BenchmarkCleanupFullScan(b *testing.B) {
	const tag = "s1-"
	fs := benchNamespace(b)
	scratch := benchScratchNames(tag)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, name := range scratch {
			fs.Create(name)
		}
		for _, name := range fs.List() {
			if strings.HasPrefix(name, "tmp/"+tag) || strings.HasPrefix(name, "pilot/"+tag) {
				_ = fs.Remove(name)
			}
		}
	}
}

func BenchmarkCleanupTracked(b *testing.B) {
	const tag = "s1-"
	sh := &shard{fs: benchNamespace(b)}
	scratch := benchScratchNames(tag)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := &scratchTracker{}
		for _, name := range scratch {
			sh.fs.Create(name)
			tr.add(name)
		}
		sh.removeScratch(tr, tag)
	}
}
