package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"

	"dyno/internal/tpch"
)

// Handler returns the service's HTTP/JSON API:
//
//	POST /query      {"sql": ...} or {"query": "Q8p", ...} -> Response
//	GET  /status     liveness + config summary
//	GET  /metrics    MetricsSnapshot
//	POST /invalidate bump the statistics epoch (base data changed)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("GET /status", s.handleStatus)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /invalidate", s.handleInvalidate)
	return mux
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req Request
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	resp, err := s.Execute(r.Context(), req)
	if err != nil {
		switch {
		case errors.Is(err, ErrOverloaded):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		case errors.Is(err, context.DeadlineExceeded):
			writeError(w, http.StatusGatewayTimeout, err.Error())
		default:
			writeError(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"sf":          s.cfg.SF,
		"scale":       s.cfg.Scale,
		"shards":      s.cfg.Shards,
		"maxInFlight": s.cfg.MaxInFlight,
		"maxQueue":    s.cfg.MaxQueue,
		"epoch":       s.Epoch(),
		"queries":     tpch.QueryNames,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Metrics())
}

func (s *Server) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"epoch": s.Invalidate()})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
