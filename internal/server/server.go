package server

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dyno/internal/baselines"
	"dyno/internal/cluster"
	"dyno/internal/coord"
	"dyno/internal/core"
	"dyno/internal/data"
	"dyno/internal/dfs"
	"dyno/internal/expr"
	"dyno/internal/jaql"
	"dyno/internal/mapreduce"
	"dyno/internal/optimizer"
	"dyno/internal/plan"
	"dyno/internal/sqlparse"
	"dyno/internal/stats"
	"dyno/internal/tpch"
)

// ErrOverloaded is returned when the admission queue is full.
var ErrOverloaded = errors.New("server: overloaded, admission queue full")

// Config sizes the service and its dataset.
type Config struct {
	// Dataset: TPC-H scale factor, row-count multiplier, and seed, as
	// everywhere else in the repository.
	SF    float64
	Scale float64
	Seed  int64

	// Cluster overrides; zero keeps cluster.DefaultConfig (the paper's
	// 14 workers). The scheduler is always Fair — the whole point of
	// the service is sharing slots across concurrent queries.
	Workers     int
	Parallelism int

	// Admission control: at most MaxInFlight queries execute at once;
	// up to MaxQueue more wait; beyond that requests fail fast with
	// ErrOverloaded. QueryTimeout is the per-query wall-clock budget
	// (0 disables).
	MaxInFlight  int
	MaxQueue     int
	QueryTimeout time.Duration

	// Cache switches (all caches are on by default) and the plan and
	// memo caches' entry bounds. The memo cache shares proven optimizer
	// group winners across structurally overlapping queries within one
	// statistics epoch; POST /invalidate discards it with the rest.
	DisablePlanCache  bool
	DisableStatsCache bool
	DisableMemoCache  bool
	PlanCacheSize     int
	MemoCacheSize     int
}

// DefaultConfig returns a service sized for interactive use on the
// simulated cluster: a small dataset so queries answer in wall-clock
// seconds, four concurrent queries, a short queue.
func DefaultConfig() Config {
	return Config{
		SF:           10,
		Scale:        0.05,
		Seed:         2014,
		MaxInFlight:  4,
		MaxQueue:     16,
		QueryTimeout: 2 * time.Minute,
	}
}

func (c Config) normalized() Config {
	if c.SF <= 0 {
		c.SF = 10
	}
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 2014
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	return c
}

// Request is one query for the service.
type Request struct {
	// SQL is the query text; alternatively Query names one of the
	// TPC-H evaluation queries (Q2, Q7, Q8p, Q9p, Q10).
	SQL   string `json:"sql,omitempty"`
	Query string `json:"query,omitempty"`
	// Variant selects the optimizer variant (default DYNOPT) and
	// Strategy the leaf-job strategy (default UNC-1).
	Variant  string `json:"variant,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	// MaxRows caps the rows returned (0 returns all).
	MaxRows int `json:"maxRows,omitempty"`
}

// Response is the outcome of one query.
type Response struct {
	Query   string `json:"query,omitempty"`
	Variant string `json:"variant"`

	Rows      []data.Value `json:"rows"`
	RowCount  int          `json:"rowCount"`
	Truncated bool         `json:"truncated,omitempty"`

	PlanCacheHit bool `json:"planCacheHit"`
	StatsReused  int  `json:"statsReusedLeaves"`
	PilotJobs    int  `json:"pilotJobs"`
	// MemoGroupsReused counts optimizer groups answered from a previous
	// round's memo or the cross-query memo cache instead of enumerated.
	MemoGroupsReused int `json:"memoGroupsReused,omitempty"`

	Jobs        int     `json:"jobs"`
	Iterations  int     `json:"iterations"`
	VirtualSec  float64 `json:"virtualSec"`
	PilotSec    float64 `json:"pilotSec"`
	OptimizeSec float64 `json:"optimizeSec"`
	WallMillis  float64 `json:"wallMillis"`

	FinalPlan string   `json:"finalPlan,omitempty"`
	Warnings  []string `json:"warnings,omitempty"`
}

// Server is the query service. Create with New; it is safe for
// concurrent use.
type Server struct {
	cfg Config

	fs     *dfs.FS
	sim    *cluster.Sim
	gate   *Gate
	coord  *coord.Service
	reg    *expr.Registry
	cat    *jaql.Catalog
	optCfg optimizer.Config

	sem     chan struct{} // in-flight slots
	waiting atomic.Int64  // queued + executing requests
	seq     atomic.Int64  // session tags

	mu    sync.Mutex // guards epoch/store/memo swaps
	epoch int64
	store *stats.Store
	plans *planCache
	memos *optimizer.SharedCache

	met   counters
	lat   *latencySample
	start time.Time
}

// New builds a service: it generates the TPC-H dataset once and owns
// the simulated cluster, DFS, catalog, and caches for its lifetime.
func New(cfg Config) (*Server, error) {
	cfg = cfg.normalized()
	ccfg := cluster.DefaultConfig()
	ccfg.Scheduler = cluster.Fair
	ccfg.RetireDoneJobs = true
	if cfg.Workers > 0 {
		ccfg.Workers = cfg.Workers
	}
	if cfg.Parallelism > 0 {
		ccfg.Parallelism = cfg.Parallelism
	}
	fs := dfs.New(dfs.WithNodes(ccfg.Workers))
	cat, err := tpch.Generate(fs, tpch.Config{SF: cfg.SF, Scale: cfg.Scale, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("server: generate dataset: %w", err)
	}
	reg := expr.NewRegistry()
	tpch.RegisterUDFs(reg, tpch.DefaultUDFParams())
	sim := cluster.New(ccfg)
	return &Server{
		cfg:    cfg,
		fs:     fs,
		sim:    sim,
		gate:   NewGate(sim),
		coord:  coord.NewService(),
		reg:    reg,
		cat:    cat,
		optCfg: optimizer.DefaultConfig(float64(ccfg.SlotMemory)),
		sem:    make(chan struct{}, cfg.MaxInFlight),
		store:  stats.NewStore(),
		plans:  newPlanCache(cfg.PlanCacheSize),
		memos:  optimizer.NewSharedCache(cfg.MemoCacheSize),
		lat:    newLatencySample(0),
		start:  time.Now(),
	}, nil
}

// Config returns the normalized configuration the server runs with.
func (s *Server) Config() Config { return s.cfg }

// Execute admits, runs, and accounts one query.
func (s *Server) Execute(ctx context.Context, req Request) (*Response, error) {
	if n := s.waiting.Add(1); n > int64(s.cfg.MaxInFlight+s.cfg.MaxQueue) {
		s.waiting.Add(-1)
		s.met.rejected.Add(1)
		return nil, ErrOverloaded
	}
	defer s.waiting.Add(-1)
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.met.canceled.Add(1)
		return nil, ctx.Err()
	}
	defer func() { <-s.sem }()

	qctx := ctx
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		qctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}

	start := time.Now()
	resp, err := s.run(qctx, req)
	wall := time.Since(start)
	if err != nil {
		s.met.errors.Add(1)
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.met.timeouts.Add(1)
		case errors.Is(err, context.Canceled):
			s.met.canceled.Add(1)
		}
		return nil, err
	}
	resp.WallMillis = float64(wall.Microseconds()) / 1000
	s.met.queries.Add(1)
	s.lat.add(resp.WallMillis)
	return resp, nil
}

// run executes one admitted query in its own engine session.
func (s *Server) run(ctx context.Context, req Request) (*Response, error) {
	sql := req.SQL
	if sql == "" {
		if req.Query == "" {
			return nil, fmt.Errorf("server: request needs sql or query")
		}
		var err error
		sql, err = tpch.QuerySQL(req.Query)
		if err != nil {
			return nil, fmt.Errorf("server: unknown query %q (valid: %s)",
				req.Query, strings.Join(tpch.QueryNames, ", "))
		}
	}
	variant := baselines.VariantDynOpt
	if req.Variant != "" {
		var err error
		variant, err = baselines.ParseVariant(req.Variant)
		if err != nil {
			return nil, err
		}
	}
	strategyName := req.Strategy
	if strategyName == "" {
		strategyName = "UNC-1"
	}
	strat, err := core.ParseStrategy(strategyName)
	if err != nil {
		return nil, err
	}
	norm, err := sqlparse.Normalize(sql)
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	epoch, store, memos := s.epoch, s.store, s.memos
	s.mu.Unlock()
	key := fmt.Sprintf("e%d|%s|%s|%s", epoch, variant, strategyName, norm)
	var cached plan.Node
	if !s.cfg.DisablePlanCache {
		cached = s.plans.get(key)
	}

	tag := fmt.Sprintf("s%d-", s.seq.Add(1))
	env := &mapreduce.Env{
		FS:    s.fs,
		Sim:   s.sim,
		Coord: s.coord,
		Reg:   s.reg,
		Gate:  newSessionGate(s.gate, ctx),
	}

	opts := core.DefaultOptions()
	opts.K = 256
	opts.KMVSize = 512
	opts.Tag = tag
	opts.Strategy = strat

	var eng *core.Engine
	planHit := cached != nil
	if planHit {
		// Plan-cache hit: re-execute the cached physical plan
		// statically. No pilot runs, no optimizer call — the entire
		// planning phase is skipped.
		opts.DisablePilotRuns = true
		opts.Reoptimize = false
		opts.CollectOnlineStats = false
		opts.Strategy = core.All{}
		opts.OptTimePerExpr = 0
		root := cached
		opts.Planner = func(*plan.JoinBlock, optimizer.Config) (plan.Node, int, error) {
			return root, 0, nil
		}
		eng = core.NewEngine(env, s.cat, s.optCfg, opts)
	} else {
		opts.ReuseStats = !s.cfg.DisableStatsCache
		eng, err = baselines.NewEngine(variant, env, s.cat, s.optCfg, opts)
		if err != nil {
			return nil, err
		}
		if !s.cfg.DisableStatsCache {
			// Share the cross-query statistics store: pilot results
			// land in it and later queries over the same leaf
			// expressions skip their pilots.
			eng.Store = store
		}
		if !s.cfg.DisableMemoCache {
			// Share proven group winners: queries with overlapping join
			// sub-graphs over this epoch start their searches warm.
			eng.MemoCache = memos
		}
	}

	res, execErr := eng.ExecuteSQLContext(ctx, sql)
	s.cleanupSession(tag)
	if execErr != nil {
		return nil, execErr
	}

	if planHit {
		s.met.planHits.Add(1)
	} else {
		if !s.cfg.DisablePlanCache {
			s.plans.put(key, res.PlanRoot)
		}
		s.met.planMisses.Add(1)
	}

	resp := &Response{
		Query:        req.Query,
		Variant:      string(variant),
		RowCount:     len(res.Rows),
		PlanCacheHit: planHit,
		Jobs:         res.Jobs,
		Iterations:   res.Iterations,
		VirtualSec:   res.TotalSec,
		PilotSec:     res.PilotSec,
		OptimizeSec:  res.OptimizeSec,
		FinalPlan:    res.FinalPlan,
		Warnings:     res.Warnings,
	}
	resp.MemoGroupsReused = res.OptGroupsReused
	s.met.memoReused.Add(int64(res.OptGroupsReused))
	if res.Pilot != nil {
		resp.StatsReused = res.Pilot.Reused
		resp.PilotJobs = res.Pilot.Jobs
		s.met.statsReused.Add(int64(res.Pilot.Reused))
		s.met.pilotJobs.Add(int64(res.Pilot.Jobs))
	}
	resp.Rows = res.Rows
	if req.MaxRows > 0 && len(res.Rows) > req.MaxRows {
		resp.Rows = res.Rows[:req.MaxRows]
		resp.Truncated = true
	}
	return resp, nil
}

// cleanupSession removes the session's scratch DFS files (tmp/ and
// pilot/ trees under its tag). Result rows were already copied out.
func (s *Server) cleanupSession(tag string) {
	for _, name := range s.fs.List() {
		if strings.HasPrefix(name, "tmp/"+tag) || strings.HasPrefix(name, "pilot/"+tag) {
			_ = s.fs.Remove(name)
		}
	}
}

// Invalidate bumps the statistics epoch: the shared statistics store
// and memo cache are replaced and the plan cache cleared, so the next
// queries re-run pilots and full searches against the current base
// tables. Call it after changing base data. Returns the new epoch.
func (s *Server) Invalidate() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.epoch++
	s.store = stats.NewStore()
	s.plans.clear()
	s.memos = optimizer.NewSharedCache(s.cfg.MemoCacheSize)
	return s.epoch
}

// Epoch returns the current statistics epoch.
func (s *Server) Epoch() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Metrics snapshots the service counters.
func (s *Server) Metrics() MetricsSnapshot {
	s.mu.Lock()
	epoch, store, memos := s.epoch, s.store, s.memos
	s.mu.Unlock()
	inFlight := len(s.sem)
	queued := int(s.waiting.Load()) - inFlight
	if queued < 0 {
		queued = 0
	}
	return MetricsSnapshot{
		UptimeSec:         time.Since(s.start).Seconds(),
		Epoch:             epoch,
		Queries:           s.met.queries.Load(),
		Errors:            s.met.errors.Load(),
		Rejected:          s.met.rejected.Load(),
		Timeouts:          s.met.timeouts.Load(),
		Canceled:          s.met.canceled.Load(),
		InFlight:          inFlight,
		Queued:            queued,
		PlanCacheHits:     s.met.planHits.Load(),
		PlanCacheMisses:   s.met.planMisses.Load(),
		PlanCacheSize:     s.plans.size(),
		StatsReusedLeaves: s.met.statsReused.Load(),
		PilotJobs:         s.met.pilotJobs.Load(),
		StatsStoreLeaves:  store.Len(),
		MemoCacheGroups:   memos.Len(),
		MemoGroupsReused:  s.met.memoReused.Load(),
		P50Millis:         s.lat.percentile(0.50),
		P95Millis:         s.lat.percentile(0.95),
		VirtualSec:        s.gate.Now(),
	}
}
