package server

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dyno/internal/baselines"
	"dyno/internal/cluster"
	"dyno/internal/core"
	"dyno/internal/data"
	"dyno/internal/expr"
	"dyno/internal/optimizer"
	"dyno/internal/plan"
	"dyno/internal/runtime"
	"dyno/internal/sqlparse"
	"dyno/internal/stats"
	"dyno/internal/tpch"
)

// ErrOverloaded is returned when the admission queue is full.
var ErrOverloaded = errors.New("server: overloaded, admission queue full")

// ErrShuttingDown is returned to requests arriving after Shutdown
// began.
var ErrShuttingDown = errors.New("server: shutting down")

// Config sizes the service and its dataset.
type Config struct {
	// Dataset: TPC-H scale factor, row-count multiplier, and seed, as
	// everywhere else in the repository.
	SF    float64
	Scale float64
	Seed  int64

	// Cluster overrides; zero keeps cluster.DefaultConfig (the paper's
	// 14 workers). The scheduler is always Fair — the whole point of
	// the service is sharing slots across concurrent queries.
	Workers     int
	Parallelism int

	// Shards is the number of independent cluster/DFS/catalog shards.
	// Requests route to shards by hash of their normalized SQL, so
	// each query text always lands on the same shard (and its caches).
	// 0 or 1 runs a single shard, reproducing the unsharded service
	// bit for bit. Every shard generates its own copy of the dataset
	// from the same seed.
	Shards int

	// Admission control: at most MaxInFlight queries execute at once;
	// up to MaxQueue more wait; beyond that requests fail fast with
	// ErrOverloaded. QueryTimeout is the per-query wall-clock budget
	// (0 disables).
	MaxInFlight  int
	MaxQueue     int
	QueryTimeout time.Duration

	// Cache switches (all caches and deduplication are on by default)
	// and the caches' entry bounds. The plan cache skips the optimizer
	// and pilot runs for repeat queries; the result cache skips
	// execution entirely, returning the cached rows; in-flight
	// deduplication coalesces concurrent identical cache-miss queries
	// onto one execution. The memo cache shares proven optimizer group
	// winners across structurally overlapping queries within one
	// statistics epoch; POST /invalidate discards it with the rest.
	DisablePlanCache   bool
	DisableStatsCache  bool
	DisableMemoCache   bool
	DisableResultCache bool
	DisableDedup       bool
	PlanCacheSize      int
	MemoCacheSize      int
	ResultCacheSize    int

	// NewRuntime builds each shard's execution backend; nil uses the
	// simulator backend (simruntime). The proc backend passes a factory
	// producing fleet-backed runtimes here; the fleet itself outlives
	// the server and is closed by its creator.
	NewRuntime func(cluster.Config) (runtime.Runtime, error)
}

// DefaultConfig returns a service sized for interactive use on the
// simulated cluster: a small dataset so queries answer in wall-clock
// seconds, four concurrent queries, a short queue, one shard.
func DefaultConfig() Config {
	return Config{
		SF:           10,
		Scale:        0.05,
		Seed:         2014,
		MaxInFlight:  4,
		MaxQueue:     16,
		QueryTimeout: 2 * time.Minute,
	}
}

func (c Config) normalized() Config {
	if c.SF <= 0 {
		c.SF = 10
	}
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.Seed == 0 {
		c.Seed = 2014
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	return c
}

// Request is one query for the service.
type Request struct {
	// SQL is the query text; alternatively Query names one of the
	// TPC-H evaluation queries (Q2, Q7, Q8p, Q9p, Q10).
	SQL   string `json:"sql,omitempty"`
	Query string `json:"query,omitempty"`
	// Variant selects the optimizer variant (default DYNOPT) and
	// Strategy the leaf-job strategy (default UNC-1).
	Variant  string `json:"variant,omitempty"`
	Strategy string `json:"strategy,omitempty"`
	// MaxRows caps the rows returned (0 returns all).
	MaxRows int `json:"maxRows,omitempty"`
}

// Response is the outcome of one query.
type Response struct {
	Query   string `json:"query,omitempty"`
	Variant string `json:"variant"`
	// Shard identifies the shard that served the query (requests route
	// by hash of the normalized SQL).
	Shard int `json:"shard,omitempty"`

	Rows      []data.Value `json:"rows"`
	RowCount  int          `json:"rowCount"`
	Truncated bool         `json:"truncated,omitempty"`

	// ResultCacheHit reports that the rows came straight from the
	// normalized-SQL result cache — nothing executed. Deduped reports
	// that this request coalesced onto a concurrent identical
	// execution: the leader ran the query, this request only waited
	// for its result. In both cases the execution statistics below
	// (Jobs, PilotJobs, OptimizeSec, ...) describe the execution that
	// produced the rows, not work done by this request.
	ResultCacheHit bool `json:"resultCacheHit,omitempty"`
	Deduped        bool `json:"deduped,omitempty"`

	PlanCacheHit bool `json:"planCacheHit"`
	StatsReused  int  `json:"statsReusedLeaves"`
	PilotJobs    int  `json:"pilotJobs"`
	// MemoGroupsReused counts optimizer groups answered from a previous
	// round's memo or the cross-query memo cache instead of enumerated.
	MemoGroupsReused int `json:"memoGroupsReused,omitempty"`

	Jobs        int     `json:"jobs"`
	Iterations  int     `json:"iterations"`
	VirtualSec  float64 `json:"virtualSec"`
	PilotSec    float64 `json:"pilotSec"`
	OptimizeSec float64 `json:"optimizeSec"`
	WallMillis  float64 `json:"wallMillis"`

	FinalPlan string   `json:"finalPlan,omitempty"`
	Warnings  []string `json:"warnings,omitempty"`
}

// Server is the query service. Create with New; it is safe for
// concurrent use.
type Server struct {
	cfg Config

	reg    *expr.Registry
	optCfg optimizer.Config
	shards []*shard

	sem     chan struct{} // in-flight slots
	waiting atomic.Int64  // queued + executing requests
	seq     atomic.Int64  // session tags

	invMu sync.Mutex   // serializes Invalidate's shard sweep
	epoch atomic.Int64 // current statistics epoch

	// Graceful shutdown: baseCtx is canceled by Shutdown, which every
	// query context is tied to; wg tracks queries between admission and
	// completion; shutMu/closed gate new enrollments.
	baseCtx    context.Context
	baseCancel context.CancelFunc
	shutMu     sync.RWMutex
	closed     bool
	wg         sync.WaitGroup

	met   counters
	lat   *latencySample
	start time.Time

	// hookJobOutput, when non-nil, runs after each job output file is
	// tracked. Tests use it to act at a provably mid-execution moment.
	hookJobOutput func()
}

// New builds a service: each shard generates the TPC-H dataset once
// and owns its simulated cluster, DFS, catalog, and caches for the
// server's lifetime.
func New(cfg Config) (*Server, error) {
	cfg = cfg.normalized()
	ccfg := cluster.DefaultConfig()
	ccfg.Scheduler = cluster.Fair
	ccfg.RetireDoneJobs = true
	if cfg.Workers > 0 {
		ccfg.Workers = cfg.Workers
	}
	if cfg.Parallelism > 0 {
		ccfg.Parallelism = cfg.Parallelism
	}
	reg := expr.NewRegistry()
	tpch.RegisterUDFs(reg, tpch.DefaultUDFParams())
	shards := make([]*shard, cfg.Shards)
	for i := range shards {
		sh, err := newShard(i, cfg, ccfg)
		if err != nil {
			return nil, err
		}
		shards[i] = sh
	}
	baseCtx, baseCancel := context.WithCancel(context.Background())
	return &Server{
		cfg:        cfg,
		reg:        reg,
		optCfg:     optimizer.DefaultConfig(float64(ccfg.SlotMemory)),
		shards:     shards,
		sem:        make(chan struct{}, cfg.MaxInFlight),
		lat:        newLatencySample(0),
		start:      time.Now(),
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
	}, nil
}

// Config returns the normalized configuration the server runs with.
func (s *Server) Config() Config { return s.cfg }

// Execute admits, runs, and accounts one query.
func (s *Server) Execute(ctx context.Context, req Request) (*Response, error) {
	// Enroll in the shutdown drain set under the read lock; Shutdown
	// flips closed under the write lock and then waits for the group,
	// so it can never miss an admitted query.
	s.shutMu.RLock()
	if s.closed {
		s.shutMu.RUnlock()
		return nil, ErrShuttingDown
	}
	s.wg.Add(1)
	s.shutMu.RUnlock()
	defer s.wg.Done()

	if n := s.waiting.Add(1); n > int64(s.cfg.MaxInFlight+s.cfg.MaxQueue) {
		s.waiting.Add(-1)
		s.met.rejected.Add(1)
		return nil, ErrOverloaded
	}
	defer s.waiting.Add(-1)
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.met.canceled.Add(1)
		return nil, ctx.Err()
	case <-s.baseCtx.Done():
		return nil, ErrShuttingDown
	}
	defer func() { <-s.sem }()

	// Tie the query's context to both the caller and server shutdown:
	// Shutdown cancels baseCtx, which cancels every in-flight query.
	qctx, qcancel := context.WithCancel(ctx)
	defer qcancel()
	stop := context.AfterFunc(s.baseCtx, qcancel)
	defer stop()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		qctx, cancel = context.WithTimeout(qctx, s.cfg.QueryTimeout)
		defer cancel()
	}

	start := time.Now()
	resp, err := s.run(qctx, req)
	wall := time.Since(start)
	if err != nil {
		// Every failed outcome increments exactly one counter:
		// timeouts and canceled are disjoint from each other and from
		// errors, which counts only non-cancellation failures (see
		// counters).
		switch {
		case errors.Is(err, context.DeadlineExceeded):
			s.met.timeouts.Add(1)
		case errors.Is(err, context.Canceled):
			s.met.canceled.Add(1)
		default:
			s.met.errors.Add(1)
		}
		return nil, err
	}
	resp.WallMillis = float64(wall.Microseconds()) / 1000
	s.met.queries.Add(1)
	s.lat.add(resp.WallMillis)
	return resp, nil
}

// shardFor routes a normalized query to its shard.
func (s *Server) shardFor(norm string) *shard {
	if len(s.shards) == 1 {
		return s.shards[0]
	}
	h := fnv.New64a()
	h.Write([]byte(norm))
	return s.shards[h.Sum64()%uint64(len(s.shards))]
}

// requestView adapts a shared response prototype — the execution's
// full result, also stored in the result cache and handed to dedup
// followers — to one request: a shallow copy with per-request flags
// and MaxRows truncation. Rows and Warnings are shared read-only.
func requestView(proto *Response, req Request, resultHit, deduped bool) *Response {
	r := *proto
	r.Query = req.Query
	r.ResultCacheHit = resultHit
	r.Deduped = deduped
	if req.MaxRows > 0 && len(r.Rows) > req.MaxRows {
		r.Rows = r.Rows[:req.MaxRows]
		r.Truncated = true
	}
	return &r
}

// run resolves, routes, and serves one admitted query: result cache
// first, then in-flight deduplication, then an engine session on the
// query's shard.
func (s *Server) run(ctx context.Context, req Request) (*Response, error) {
	sql := req.SQL
	if sql == "" {
		if req.Query == "" {
			return nil, fmt.Errorf("server: request needs sql or query")
		}
		var err error
		sql, err = tpch.QuerySQL(req.Query)
		if err != nil {
			return nil, fmt.Errorf("server: unknown query %q (valid: %s)",
				req.Query, strings.Join(tpch.QueryNames, ", "))
		}
	}
	variant := baselines.VariantDynOpt
	if req.Variant != "" {
		var err error
		variant, err = baselines.ParseVariant(req.Variant)
		if err != nil {
			return nil, err
		}
	}
	strategyName := req.Strategy
	if strategyName == "" {
		strategyName = "UNC-1"
	}
	strat, err := core.ParseStrategy(strategyName)
	if err != nil {
		return nil, err
	}
	norm, err := sqlparse.Normalize(sql)
	if err != nil {
		return nil, err
	}

	sh := s.shardFor(norm)
	epoch, store, memos := sh.session()
	key := fmt.Sprintf("e%d|%s|%s|%s", epoch, variant, strategyName, norm)

	if !s.cfg.DisableResultCache {
		if proto, ok := sh.results.get(key); ok {
			s.met.resultHits.Add(1)
			return requestView(proto, req, true, false), nil
		}
	}

	var fromCache bool
	exec := func() (*Response, error) {
		if !s.cfg.DisableResultCache && !s.cfg.DisableDedup {
			// Re-check under the in-flight slot: a leader that
			// finished between our cache check and registration has
			// already cached its result, and executing again would
			// duplicate its work.
			if proto, ok := sh.results.get(key); ok {
				fromCache = true
				return proto, nil
			}
		}
		return s.execute(ctx, sh, sql, variant, strat, key, epoch, store, memos)
	}

	var proto *Response
	leader := true
	if s.cfg.DisableDedup {
		proto, err = exec()
	} else {
		proto, err, leader = sh.flight.do(ctx, key, exec)
	}
	if err != nil {
		return nil, err
	}
	switch {
	case !leader:
		s.met.deduped.Add(1)
		return requestView(proto, req, false, true), nil
	case fromCache:
		s.met.resultHits.Add(1)
		return requestView(proto, req, true, false), nil
	default:
		if !s.cfg.DisableResultCache {
			s.met.resultMisses.Add(1)
		}
		return requestView(proto, req, false, false), nil
	}
}

// execute runs one query in its own engine session on sh and returns
// the full (untruncated) response prototype, caching it for repeats.
func (s *Server) execute(ctx context.Context, sh *shard, sql string, variant baselines.Variant,
	strat core.Strategy, key string, epoch int64, store *stats.Store, memos *optimizer.SharedCache) (*Response, error) {
	var cached plan.Node
	if !s.cfg.DisablePlanCache {
		cached, _ = sh.plans.get(key)
	}

	tag := fmt.Sprintf("s%d-", s.seq.Add(1))
	scratch := &scratchTracker{}
	onCreate := scratch.add
	if hook := s.hookJobOutput; hook != nil {
		onCreate = func(name string) {
			scratch.add(name)
			hook()
		}
	}
	env := sh.rt.NewEnv(s.reg)
	env.Gate = newSessionGate(sh.gate, ctx)
	env.OnCreateFile = onCreate

	opts := core.DefaultOptions()
	opts.K = 256
	opts.KMVSize = 512
	opts.Tag = tag
	opts.Strategy = strat

	var eng *core.Engine
	var err error
	planHit := cached != nil
	if planHit {
		// Plan-cache hit: re-execute the cached physical plan
		// statically. No pilot runs, no optimizer call — the entire
		// planning phase is skipped.
		opts.DisablePilotRuns = true
		opts.Reoptimize = false
		opts.CollectOnlineStats = false
		opts.Strategy = core.All{}
		opts.OptTimePerExpr = 0
		root := cached
		opts.Planner = func(*plan.JoinBlock, optimizer.Config) (plan.Node, int, error) {
			return root, 0, nil
		}
		eng = core.NewEngine(env, sh.cat, s.optCfg, opts)
	} else {
		opts.ReuseStats = !s.cfg.DisableStatsCache
		eng, err = baselines.NewEngine(variant, env, sh.cat, s.optCfg, opts)
		if err != nil {
			return nil, err
		}
		if !s.cfg.DisableStatsCache {
			// Share the shard's cross-query statistics store: pilot
			// results land in it and later queries over the same leaf
			// expressions skip their pilots.
			eng.Store = store
		}
		if !s.cfg.DisableMemoCache {
			// Share proven group winners: queries with overlapping join
			// sub-graphs over this epoch start their searches warm.
			eng.MemoCache = memos
		}
	}

	res, execErr := eng.ExecuteSQLContext(ctx, sql)
	sh.removeScratch(scratch, tag)
	if execErr != nil {
		return nil, execErr
	}

	if planHit {
		s.met.planHits.Add(1)
	} else {
		if !s.cfg.DisablePlanCache && res.PlanRoot != nil {
			sh.plans.put(key, epoch, res.PlanRoot)
		}
		s.met.planMisses.Add(1)
	}

	resp := &Response{
		Variant:      string(variant),
		Shard:        sh.id,
		RowCount:     len(res.Rows),
		PlanCacheHit: planHit,
		Jobs:         res.Jobs,
		Iterations:   res.Iterations,
		VirtualSec:   res.TotalSec,
		PilotSec:     res.PilotSec,
		OptimizeSec:  res.OptimizeSec,
		FinalPlan:    res.FinalPlan,
		Warnings:     res.Warnings,
	}
	resp.MemoGroupsReused = res.OptGroupsReused
	s.met.memoReused.Add(int64(res.OptGroupsReused))
	if res.Pilot != nil {
		resp.StatsReused = res.Pilot.Reused
		resp.PilotJobs = res.Pilot.Jobs
		s.met.statsReused.Add(int64(res.Pilot.Reused))
		s.met.pilotJobs.Add(int64(res.Pilot.Jobs))
	}
	resp.Rows = res.Rows
	if !s.cfg.DisableResultCache {
		// Guarded by the epoch like the plan cache: a put computed
		// against a pre-Invalidate epoch is dropped.
		sh.results.put(key, epoch, resp)
	}
	return resp, nil
}

// Invalidate bumps the statistics epoch on every shard: shared
// statistics stores and memo caches are replaced and plan and result
// caches cleared, so the next queries re-run pilots and full searches
// against the current base tables. Call it after changing base data.
// Returns the new epoch.
func (s *Server) Invalidate() int64 {
	s.invMu.Lock()
	defer s.invMu.Unlock()
	e := s.epoch.Add(1)
	for _, sh := range s.shards {
		sh.invalidate(e, s.cfg)
	}
	return e
}

// Epoch returns the current statistics epoch.
func (s *Server) Epoch() int64 { return s.epoch.Load() }

// Shutdown drains the server: new requests fail fast with
// ErrShuttingDown, every in-flight query's context is canceled, and
// once all queries have returned the shard runtimes are closed. The
// ctx bounds how long to wait for the drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutMu.Lock()
	already := s.closed
	s.closed = true
	s.shutMu.Unlock()
	s.baseCancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	if already {
		return nil
	}
	var firstErr error
	for _, sh := range s.shards {
		if err := sh.rt.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Metrics snapshots the service counters. Cache sizes aggregate over
// shards; VirtualSec reports the most-advanced shard clock.
func (s *Server) Metrics() MetricsSnapshot {
	var planSize, resultSize, storeLeaves, memoGroups int
	var virtual float64
	for _, sh := range s.shards {
		_, store, memos := sh.session()
		planSize += sh.plans.size()
		resultSize += sh.results.size()
		storeLeaves += store.Len()
		memoGroups += memos.Len()
		if now := sh.gate.Now(); now > virtual {
			virtual = now
		}
	}
	inFlight := len(s.sem)
	queued := int(s.waiting.Load()) - inFlight
	if queued < 0 {
		queued = 0
	}
	return MetricsSnapshot{
		UptimeSec:         time.Since(s.start).Seconds(),
		Epoch:             s.epoch.Load(),
		Shards:            len(s.shards),
		Queries:           s.met.queries.Load(),
		Errors:            s.met.errors.Load(),
		Rejected:          s.met.rejected.Load(),
		Timeouts:          s.met.timeouts.Load(),
		Canceled:          s.met.canceled.Load(),
		InFlight:          inFlight,
		Queued:            queued,
		ResultCacheHits:   s.met.resultHits.Load(),
		ResultCacheMisses: s.met.resultMisses.Load(),
		ResultCacheSize:   resultSize,
		Deduped:           s.met.deduped.Load(),
		PlanCacheHits:     s.met.planHits.Load(),
		PlanCacheMisses:   s.met.planMisses.Load(),
		PlanCacheSize:     planSize,
		StatsReusedLeaves: s.met.statsReused.Load(),
		PilotJobs:         s.met.pilotJobs.Load(),
		StatsStoreLeaves:  storeLeaves,
		MemoCacheGroups:   memoGroups,
		MemoGroupsReused:  s.met.memoReused.Load(),
		P50Millis:         s.lat.percentile(0.50),
		P95Millis:         s.lat.percentile(0.95),
		P99Millis:         s.lat.percentile(0.99),
		VirtualSec:        virtual,
	}
}
