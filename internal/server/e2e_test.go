package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"dyno/internal/baselines"
	"dyno/internal/cluster"
	"dyno/internal/coord"
	"dyno/internal/core"
	"dyno/internal/data"
	"dyno/internal/dfs"
	"dyno/internal/expr"
	"dyno/internal/mapreduce"
	"dyno/internal/optimizer"
	"dyno/internal/tpch"
)

// referenceRows executes one query the way cmd/dynoql does: a fresh
// exclusive environment (FIFO scheduler, dedicated engine), no caches.
// This is the ground truth the concurrent service must reproduce.
func referenceRows(t *testing.T, cfg Config, query, variant string) []data.Value {
	t.Helper()
	ccfg := cluster.DefaultConfig()
	env := &mapreduce.Env{
		FS:    dfs.New(dfs.WithNodes(ccfg.Workers)),
		Sim:   cluster.New(ccfg),
		Coord: coord.NewService(),
		Reg:   expr.NewRegistry(),
	}
	cat, err := tpch.Generate(env.FS, tpch.Config{SF: cfg.SF, Scale: cfg.Scale, Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	tpch.RegisterUDFs(env.Reg, tpch.DefaultUDFParams())
	opts := core.DefaultOptions()
	opts.K = 256
	opts.KMVSize = 512
	v, err := baselines.ParseVariant(variant)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := baselines.NewEngine(v, env, cat, optimizer.DefaultConfig(float64(ccfg.SlotMemory)), opts)
	if err != nil {
		t.Fatal(err)
	}
	sql, err := tpch.QuerySQL(query)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.ExecuteSQL(sql)
	if err != nil {
		t.Fatal(err)
	}
	return res.Rows
}

// TestConcurrentServiceMatchesSequentialCLI is the end-to-end
// acceptance check: N queries POSTed concurrently through the HTTP API
// return row-for-row the same results as sequential dynoql-style runs
// of the same (query, variant) on the same dataset.
func TestConcurrentServiceMatchesSequentialCLI(t *testing.T) {
	cfg := testConfig()
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// BESTSTATIC plans deterministically; DYNOPT exercises pilots,
	// re-optimization, and the caches under contention.
	workload := []struct{ query, variant string }{
		{"Q8p", "BESTSTATIC"},
		{"Q8p", "DYNOPT"},
		{"Q9p", "BESTSTATIC"},
		{"Q9p", "DYNOPT"},
		{"Q7", "DYNOPT"},
	}
	want := make(map[string]string)
	for _, w := range workload {
		key := w.query + "/" + w.variant
		want[key] = rowsKey(t, referenceRows(t, cfg, w.query, w.variant))
	}

	const rounds = 3 // repeats also exercise plan-cache hits under load
	type outcome struct {
		key  string
		rows string
		err  error
	}
	results := make(chan outcome, rounds*len(workload))
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for _, w := range workload {
			wg.Add(1)
			go func(query, variant string) {
				defer wg.Done()
				key := query + "/" + variant
				body, _ := json.Marshal(Request{Query: query, Variant: variant})
				resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body))
				if err != nil {
					results <- outcome{key: key, err: err}
					return
				}
				defer resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					results <- outcome{key: key, err: fmt.Errorf("status %d", resp.StatusCode)}
					return
				}
				var out Response
				if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
					results <- outcome{key: key, err: err}
					return
				}
				var sb bytes.Buffer
				for _, row := range out.Rows {
					b, _ := json.Marshal(row)
					sb.Write(b)
					sb.WriteByte('\n')
				}
				results <- outcome{key: key, rows: sb.String()}
			}(w.query, w.variant)
		}
	}
	wg.Wait()
	close(results)

	for out := range results {
		if out.err != nil {
			t.Errorf("%s: %v", out.key, out.err)
			continue
		}
		if out.rows != want[out.key] {
			t.Errorf("%s: concurrent rows differ from sequential reference\ngot:\n%s\nwant:\n%s",
				out.key, out.rows, want[out.key])
		}
	}

	m := s.Metrics()
	if m.Queries != rounds*int64(len(workload)) {
		t.Errorf("queries = %d, want %d", m.Queries, rounds*len(workload))
	}
	// Repeats are served from some reuse tier: the result cache, the
	// in-flight dedup, or (with both racing) the plan cache.
	if m.ResultCacheHits+m.Deduped+m.PlanCacheHits == 0 {
		t.Errorf("no cache or dedup reuse across %d repeated rounds", rounds)
	}
	if m.VirtualSec <= 0 {
		t.Errorf("shared virtual clock did not advance")
	}
}

// TestShardedServiceMatchesReference proves the multi-shard service
// returns the same rows as exclusive sequential runs: sharding, the
// result cache, and dedup are throughput features only.
func TestShardedServiceMatchesReference(t *testing.T) {
	cfg := testConfig()
	s := newTestServer(t, func(c *Config) {
		c.Shards = 2
		c.MaxInFlight = 6
		c.MaxQueue = 32
	})
	queries := []string{"Q8p", "Q10"}
	want := make(map[string]string)
	for _, q := range queries {
		want[q] = rowsKey(t, referenceRows(t, cfg, q, "DYNOPT"))
	}
	const rounds = 2
	type outcome struct {
		query string
		rows  string
		err   error
	}
	results := make(chan outcome, rounds*len(queries))
	for r := 0; r < rounds; r++ {
		for _, q := range queries {
			go func(q string) {
				resp, err := s.Execute(context.Background(), Request{Query: q})
				if err != nil {
					results <- outcome{query: q, err: err}
					return
				}
				results <- outcome{query: q, rows: rowsKey(t, resp.Rows)}
			}(q)
		}
	}
	for i := 0; i < rounds*len(queries); i++ {
		out := <-results
		if out.err != nil {
			t.Errorf("%s: %v", out.query, out.err)
			continue
		}
		if out.rows != want[out.query] {
			t.Errorf("%s: sharded rows differ from sequential reference", out.query)
		}
	}
}
