package server

import "sync"

// fifoCache is the bounded FIFO map behind both the plan cache
// (instantiated with plan.Node values) and the result cache
// (*Response values). Keys embed the statistics epoch
// ("e<N>|variant|strategy|normalized SQL"), so bumping the epoch
// orphans every entry even before clear reclaims them.
//
// put re-checks the epoch the caller computed its key against: a query
// that started before an Invalidate would otherwise park its stale
// entry in the freshly cleared cache, where the old-epoch key can
// never hit again but permanently occupies a FIFO slot and evicts live
// entries. Such puts are dropped atomically under the cache lock.
type fifoCache[V any] struct {
	mu      sync.Mutex
	max     int
	epoch   int64
	entries map[string]V
	order   []string
}

func newFIFOCache[V any](max int) *fifoCache[V] {
	if max <= 0 {
		max = 256
	}
	return &fifoCache[V]{max: max, entries: make(map[string]V)}
}

func (c *fifoCache[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.entries[key]
	return v, ok
}

// put stores v under key if epoch still matches the cache's epoch and
// reports whether the entry was stored. Overwriting an existing key
// replaces the value without duplicating its eviction-order slot.
func (c *fifoCache[V]) put(key string, epoch int64, v V) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if epoch != c.epoch {
		return false
	}
	if _, ok := c.entries[key]; ok {
		c.entries[key] = v
		return true
	}
	for len(c.entries) >= c.max && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = v
	c.order = append(c.order, key)
	return true
}

// clear wipes the cache and advances it to the given epoch; later puts
// computed against an older epoch are refused.
func (c *fifoCache[V]) clear(epoch int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.epoch = epoch
	c.entries = make(map[string]V)
	c.order = nil
}

func (c *fifoCache[V]) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// keys returns the cached keys in no particular order (tests only).
func (c *fifoCache[V]) keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.entries))
	for k := range c.entries {
		out = append(out, k)
	}
	return out
}
