package server

import (
	"sync"

	"dyno/internal/plan"
)

// planCache maps "epoch|variant|strategy|normalized SQL" to the
// physical plan a previous execution chose at its first optimization
// point. Entries are immutable plan trees (core.Result.PlanRoot) that
// hit sessions share read-only; eviction is FIFO. Keys embed the
// statistics epoch, so bumping the epoch orphans every entry even
// before clear() reclaims them.
type planCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]plan.Node
	order   []string
}

func newPlanCache(max int) *planCache {
	if max <= 0 {
		max = 256
	}
	return &planCache{max: max, entries: make(map[string]plan.Node)}
}

func (c *planCache) get(key string) plan.Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.entries[key]
}

func (c *planCache) put(key string, root plan.Node) {
	if root == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		c.entries[key] = root
		return
	}
	for len(c.entries) >= c.max && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = root
	c.order = append(c.order, key)
}

func (c *planCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[string]plan.Node)
	c.order = nil
}

func (c *planCache) size() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
