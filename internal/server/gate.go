// Package server implements a long-running query service over N
// independent shards, each owning a simulated cluster, DFS, and
// catalog. Requests route to shards by hash of their normalized SQL;
// within a shard, many queries execute concurrently: each request gets
// its own core.Engine session whose MapReduce jobs interleave with
// every other session's on the shard's cluster under the Fair
// scheduler. An admission controller bounds in-flight work. Repeat
// queries are served in tiers: a normalized-SQL result cache returns
// rows without executing anything, in-flight deduplication coalesces
// concurrent identical cache misses onto one execution, a plan cache
// keyed by normalized query and statistics epoch skips the optimizer
// (and pilot runs), and a cross-query statistics store reuses
// pilot-run results across queries over the same leaf expressions —
// all with epoch-based invalidation when base tables change.
// cmd/dynod exposes the service over HTTP/JSON.
package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"dyno/internal/cluster"
)

// Idle-spin tuning for Gate.runUntil: how long to wait between polls
// when the cluster has no events but the predicate is unsatisfied, and
// how many consecutive idle polls to tolerate before declaring the
// predicate unsatisfiable.
const (
	idleWait   = 200 * time.Microsecond
	idleGiveUp = 5000 // ~1s of wall-clock idleness
)

// Gate serializes access to the one cluster.Sim shared by every
// session. The simulator is single-threaded by design; the gate holds
// a mutex across each submission, clock access, and event step, so
// engine goroutines interleave at event granularity and the Fair
// scheduler sees all sessions' jobs when it hands out slots.
type Gate struct {
	mu  sync.Mutex
	sim *cluster.Sim
}

// NewGate wraps a simulator for shared use.
func NewGate(sim *cluster.Sim) *Gate { return &Gate{sim: sim} }

// Submit enqueues a job under the gate lock.
func (g *Gate) Submit(j cluster.Job) *cluster.Submission {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sim.Submit(j)
}

// Now returns the shared virtual clock.
func (g *Gate) Now() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sim.Now()
}

// Advance charges client-side work to the shared virtual clock.
func (g *Gate) Advance(d float64) {
	g.mu.Lock()
	g.sim.Advance(d)
	g.mu.Unlock()
}

// runUntil steps the simulator until pred() holds, releasing the lock
// between events so concurrent sessions can submit and observe their
// own jobs. Steps driven by one session execute events of all
// sessions — whoever drives makes everyone progress.
func (g *Gate) runUntil(ctx context.Context, pred func() bool) error {
	idle := 0
	for {
		g.mu.Lock()
		if pred() {
			g.mu.Unlock()
			return nil
		}
		if err := ctx.Err(); err != nil {
			g.mu.Unlock()
			return err
		}
		stepped, _ := g.sim.Step()
		g.mu.Unlock()
		if stepped {
			idle = 0
			continue
		}
		// The cluster is idle but the predicate is unsatisfied. The
		// awaited submission can only come from a session currently in
		// client-side code (optimizing, merging statistics), so yield
		// and retry — but give up if the cluster stays idle long enough
		// that no session can still be working.
		idle++
		if idle > idleGiveUp {
			return fmt.Errorf("server: cluster idle while session still waiting")
		}
		time.Sleep(idleWait)
	}
}

// sessionGate binds one query session's cancellation context to the
// shared gate and tracks the session's submissions, so that a
// canceled or timed-out session releases the cluster resources it
// still holds. It implements mapreduce.Gate.
type sessionGate struct {
	gate *Gate
	ctx  context.Context

	mu   sync.Mutex
	subs []*cluster.Submission
}

func newSessionGate(g *Gate, ctx context.Context) *sessionGate {
	return &sessionGate{gate: g, ctx: ctx}
}

// Submit implements mapreduce.Gate.
func (s *sessionGate) Submit(j cluster.Job) *cluster.Submission {
	sub := s.gate.Submit(j)
	s.mu.Lock()
	s.subs = append(s.subs, sub)
	s.mu.Unlock()
	return sub
}

// Now implements mapreduce.Gate.
func (s *sessionGate) Now() float64 { return s.gate.Now() }

// Advance implements mapreduce.Gate.
func (s *sessionGate) Advance(d float64) { s.gate.Advance(d) }

// RunUntil implements mapreduce.Gate. On cancellation it abandons the
// session's live jobs before returning.
func (s *sessionGate) RunUntil(pred func() bool) error {
	err := s.gate.runUntil(s.ctx, pred)
	if err != nil && s.ctx.Err() != nil {
		s.abandon(err)
	}
	return err
}

// abandon cancels every submission the session still has in flight:
// queued tasks are dropped immediately; running attempts finish and
// free their slots as other sessions step the simulator.
func (s *sessionGate) abandon(cause error) {
	s.mu.Lock()
	subs := append([]*cluster.Submission(nil), s.subs...)
	s.mu.Unlock()
	s.gate.mu.Lock()
	defer s.gate.mu.Unlock()
	for _, sub := range subs {
		if !sub.Done() {
			sub.Cancel(fmt.Errorf("server: session canceled: %w", cause))
		}
	}
}
