package server

import (
	"context"
	"errors"
	"sync"
)

// flightCall is one in-flight execution followers can wait on.
type flightCall struct {
	done chan struct{}
	resp *Response
	err  error
}

// flightGroup coalesces concurrent identical cache-miss queries onto
// one execution, singleflight-style: the first caller for a key (the
// leader) runs the query; callers arriving while it is in flight (the
// followers) wait for the leader's response and share it — and its
// error — without executing anything themselves. Each shard owns one
// group; keys are the same epoch|variant|strategy|normSQL strings the
// caches use.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[string]*flightCall)}
}

// do runs fn for key, coalescing concurrent calls. leader reports
// which role this call played: the leader's response is the execution
// itself, a follower's is the leader's shared result. A follower whose
// context is canceled while waiting returns its context error without
// disturbing the leader. A follower that observes the LEADER's
// cancellation while its own context is still live does not inherit
// the failure: it loops and re-elects (running the query itself or
// joining a newer leader), so one canceled request can never fail the
// requests coalesced behind it.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*Response, error)) (resp *Response, err error, leader bool) {
	for {
		g.mu.Lock()
		if c, ok := g.calls[key]; ok {
			g.mu.Unlock()
			select {
			case <-c.done:
				if isCancellation(c.err) && ctx.Err() == nil {
					continue // leader canceled, we weren't: re-elect
				}
				return c.resp, c.err, false
			case <-ctx.Done():
				return nil, ctx.Err(), false
			}
		}
		c := &flightCall{done: make(chan struct{})}
		g.calls[key] = c
		g.mu.Unlock()
		defer func() {
			// Remove the entry and release followers even if fn panics, so
			// a wedged key cannot strand future queries.
			g.mu.Lock()
			delete(g.calls, key)
			g.mu.Unlock()
			close(c.done)
		}()
		c.resp, c.err = fn()
		return c.resp, c.err, true
	}
}

// isCancellation reports whether an execution failed because its
// context ended rather than on the query's own merits.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// pending returns the number of in-flight keys (tests only).
func (g *flightGroup) pending() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.calls)
}
