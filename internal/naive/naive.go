// Package naive is a reference query evaluator: nested-loop joins over
// the catalog with direct predicate evaluation, no optimization, no
// cluster. It exists to cross-check the distributed engine — every
// plan DYNO produces must return exactly the rows this evaluator
// returns. It shares the record-level operator semantics with the
// engine through package rowops.
package naive

import (
	"fmt"
	"sort"

	"dyno/internal/data"
	"dyno/internal/dfs"
	"dyno/internal/expr"
	"dyno/internal/rowops"
	"dyno/internal/sqlparse"
)

// Catalog resolves table names to files of raw records.
type Catalog interface {
	Lookup(name string) (*dfs.File, bool)
}

// Evaluate runs the query by brute force and returns the projected
// output rows (after GROUP BY / ORDER BY / LIMIT). Joins are nested
// loops, but each WHERE conjunct is applied as soon as all its aliases
// are bound so that intermediate results stay near the final size.
func Evaluate(q *sqlparse.Query, cat Catalog, reg *expr.Registry) ([]data.Value, error) {
	conjuncts := expr.SplitConjuncts(q.Where)
	applied := make([]bool, len(conjuncts))
	bound := map[string]bool{}
	ectx := &expr.Ctx{Reg: reg}

	rows := []data.Value{data.Object()}
	for _, ref := range q.From {
		f, ok := cat.Lookup(ref.Table)
		if !ok {
			return nil, fmt.Errorf("naive: unknown table %q", ref.Table)
		}
		bound[ref.Alias] = true
		// Conjuncts that become fully bound with this relation.
		var active []expr.Expr
		for i, c := range conjuncts {
			if applied[i] {
				continue
			}
			ok := true
			for a := range expr.Aliases(c) {
				if !bound[a] {
					ok = false
					break
				}
			}
			if ok {
				applied[i] = true
				active = append(active, c)
			}
		}
		// Pick one equi-join conjunct linking the new relation to the
		// bound prefix to index on; the rest re-verify per row.
		var probeLeft, keyRight data.Path
		for _, c := range active {
			l, r, ok := expr.EquiJoinCols(c)
			if !ok {
				continue
			}
			switch {
			case l.Head() == ref.Alias && bound[r.Head()]:
				probeLeft, keyRight = r, l
			case r.Head() == ref.Alias && bound[l.Head()]:
				probeLeft, keyRight = l, r
			default:
				continue
			}
			break
		}
		wrapped := make([]data.Value, 0, f.NumRecords())
		for _, rec := range f.AllRecords() {
			wrapped = append(wrapped, data.Object(data.Field{Name: ref.Alias, Value: rec}))
		}
		var index map[uint64][]data.Value
		if keyRight != nil {
			index = make(map[uint64][]data.Value, len(wrapped))
			for _, w := range wrapped {
				k := data.Hash64(keyRight.Eval(w))
				index[k] = append(index[k], w)
			}
		}
		var next []data.Value
		for _, left := range rows {
			cands := wrapped
			if index != nil {
				cands = index[data.Hash64(probeLeft.Eval(left))]
			}
		recs:
			for _, w := range cands {
				row := data.MergeObjects(left, w)
				for _, c := range active {
					if !c.Eval(ectx, row).Truthy() {
						continue recs
					}
				}
				next = append(next, row)
			}
		}
		rows = next
	}
	if ectx.Err != nil {
		return nil, ectx.Err
	}

	var out []data.Value
	if q.HasAggregates() || len(q.GroupBy) > 0 {
		out = aggregate(ectx, q, rows)
	} else {
		for _, row := range rows {
			out = append(out, rowops.Project(ectx, q.Select, row))
		}
	}
	if ectx.Err != nil {
		return nil, ectx.Err
	}
	if len(q.OrderBy) > 0 {
		rowops.Sort(out, q.OrderBy)
	}
	if q.Limit >= 0 && len(out) > q.Limit {
		out = out[:q.Limit]
	}
	return out, nil
}

func aggregate(ectx *expr.Ctx, q *sqlparse.Query, rows []data.Value) []data.Value {
	groups := map[string][]data.Value{}
	var order []string
	for _, row := range rows {
		k := rowops.GroupKey(ectx, q.GroupBy, row).String()
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], row)
	}
	sort.Strings(order)
	var out []data.Value
	for _, k := range order {
		out = append(out, rowops.AggregateGroup(ectx, q.Select, groups[k]))
	}
	return out
}

// SortForComparison canonically orders rows so engine output (whose
// order depends on task scheduling) can be compared to the oracle.
func SortForComparison(rows []data.Value) []data.Value {
	out := append([]data.Value(nil), rows...)
	sort.SliceStable(out, func(a, b int) bool {
		return data.Compare(out[a], out[b]) < 0
	})
	return out
}

// ApproxEqual compares two values, treating floating-point numbers as
// equal within a relative tolerance. Aggregates computed by the engine
// sum group members in task order, which differs from the oracle's row
// order, so double-precision sums can differ in the last bits.
func ApproxEqual(a, b data.Value, tol float64) bool {
	if a.Kind() == data.KindDouble || b.Kind() == data.KindDouble {
		if !a.IsNumeric() || !b.IsNumeric() {
			return false
		}
		af, bf := a.Float(), b.Float()
		diff := af - bf
		if diff < 0 {
			diff = -diff
		}
		mag := 1.0
		if m := abs(af); m > mag {
			mag = m
		}
		if m := abs(bf); m > mag {
			mag = m
		}
		return diff <= tol*mag
	}
	switch a.Kind() {
	case data.KindArray:
		if b.Kind() != data.KindArray || a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if !ApproxEqual(a.Index(i), b.Index(i), tol) {
				return false
			}
		}
		return true
	case data.KindObject:
		if b.Kind() != data.KindObject || a.Len() != b.Len() {
			return false
		}
		bf := b.Fields()
		for i, f := range a.Fields() {
			if bf[i].Name != f.Name || !ApproxEqual(f.Value, bf[i].Value, tol) {
				return false
			}
		}
		return true
	default:
		return data.Equal(a, b)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
