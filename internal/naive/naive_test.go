package naive

import (
	"testing"

	"dyno/internal/data"
	"dyno/internal/dfs"
	"dyno/internal/expr"
	"dyno/internal/sqlparse"
)

type cat map[string]*dfs.File

func (c cat) Lookup(n string) (*dfs.File, bool) { f, ok := c[n]; return f, ok }

func fixture() (cat, *expr.Registry) {
	fs := dfs.New()
	wa := fs.Create("a")
	for i := 0; i < 10; i++ {
		wa.Append(data.Object(
			data.Field{Name: "id", Value: data.Int(int64(i))},
			data.Field{Name: "bid", Value: data.Int(int64(i % 3))},
		))
	}
	wb := fs.Create("b")
	for i := 0; i < 3; i++ {
		wb.Append(data.Object(
			data.Field{Name: "id", Value: data.Int(int64(i))},
			data.Field{Name: "name", Value: data.String(string(rune('x' + i)))},
		))
	}
	reg := expr.NewRegistry()
	reg.Register(expr.UDF{Name: "even", Fn: func(args []data.Value) data.Value {
		return data.Bool(args[0].FieldOr("id").Int()%2 == 0)
	}})
	c := cat{}
	c["a"], _ = fs.Open("a")
	c["b"], _ = fs.Open("b")
	return c, reg
}

func TestEvaluateJoin(t *testing.T) {
	c, reg := fixture()
	q := sqlparse.MustParse("SELECT a.id, b.name FROM a, b WHERE a.bid = b.id")
	rows, err := Evaluate(q, c, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d, want 10 (FK join)", len(rows))
	}
}

func TestEvaluateUDFFilter(t *testing.T) {
	c, reg := fixture()
	q := sqlparse.MustParse("SELECT a.id FROM a WHERE even(a)")
	rows, err := Evaluate(q, c, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
}

func TestEvaluateAggregates(t *testing.T) {
	c, reg := fixture()
	q := sqlparse.MustParse("SELECT b.name, count(*) AS n FROM a, b WHERE a.bid = b.id GROUP BY b.name ORDER BY n DESC, b.name")
	rows, err := Evaluate(q, c, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("groups = %d", len(rows))
	}
	// bid distribution of 0..9 mod 3: 0→4, 1→3, 2→3.
	if rows[0].FieldOr("n").Int() != 4 {
		t.Errorf("top group n = %v", rows[0].FieldOr("n"))
	}
}

func TestEvaluateLimitAndOrder(t *testing.T) {
	c, reg := fixture()
	q := sqlparse.MustParse("SELECT a.id FROM a ORDER BY a.id DESC LIMIT 3")
	rows, err := Evaluate(q, c, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].FieldOr("id").Int() != 9 {
		t.Errorf("rows = %v", rows)
	}
}

func TestEvaluateUnknownTable(t *testing.T) {
	c, reg := fixture()
	q := sqlparse.MustParse("SELECT x.id FROM missing x")
	if _, err := Evaluate(q, c, reg); err == nil {
		t.Error("unknown table should error")
	}
}

func TestEvaluateCartesianWhenNoPred(t *testing.T) {
	c, reg := fixture()
	q := sqlparse.MustParse("SELECT a.id FROM a, b")
	rows, err := Evaluate(q, c, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 30 {
		t.Fatalf("cartesian rows = %d, want 30", len(rows))
	}
}

func TestSortForComparison(t *testing.T) {
	rows := []data.Value{data.Int(3), data.Int(1), data.Int(2)}
	sorted := SortForComparison(rows)
	if sorted[0].Int() != 1 || sorted[2].Int() != 3 {
		t.Error("sort broken")
	}
	if rows[0].Int() != 3 {
		t.Error("input mutated")
	}
}

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b data.Value
		want bool
	}{
		{data.Double(1.0000000001), data.Double(1.0), true},
		{data.Double(1.1), data.Double(1.0), false},
		{data.Double(2.0), data.Int(2), true},
		{data.Double(1.0), data.String("1"), false},
		{data.Int(3), data.Int(3), true},
		{data.Int(3), data.Int(4), false},
		{data.Array(data.Double(1.0 + 1e-12)), data.Array(data.Int(1)), true},
		{data.Array(data.Int(1)), data.Array(data.Int(1), data.Int(2)), false},
		{data.Array(data.Int(1)), data.Int(1), false},
		{
			data.Object(data.Field{Name: "x", Value: data.Double(5.0000000001)}),
			data.Object(data.Field{Name: "x", Value: data.Double(5)}),
			true,
		},
		{
			data.Object(data.Field{Name: "x", Value: data.Int(1)}),
			data.Object(data.Field{Name: "y", Value: data.Int(1)}),
			false,
		},
		{
			data.Object(data.Field{Name: "x", Value: data.Int(1)}),
			data.Object(),
			false,
		},
		{data.Null(), data.Null(), true},
		{data.Double(-2.0000000001), data.Double(-2.0), true},
	}
	for i, c := range cases {
		if got := ApproxEqual(c.a, c.b, 1e-9); got != c.want {
			t.Errorf("case %d: ApproxEqual(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestEvaluateGroupByWithoutAggregates(t *testing.T) {
	c, reg := fixture()
	q := sqlparse.MustParse("SELECT a.bid FROM a GROUP BY a.bid ORDER BY a.bid")
	rows, err := Evaluate(q, c, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("groups = %d", len(rows))
	}
}

func TestEvaluateErrorFromUDF(t *testing.T) {
	c, _ := fixture()
	q := sqlparse.MustParse("SELECT a.id FROM a WHERE nosuch(a)")
	if _, err := Evaluate(q, c, expr.NewRegistry()); err == nil {
		t.Error("unknown UDF should surface an error")
	}
}
