// Restaurants reproduces the paper's §4.1 motivating query Q1: find
// California restaurants with zip code 94301 that have positive
// reviews, joining restaurants (with a *nested address array* and two
// *correlated* predicates), reviews (filtered by a sentiment-analysis
// UDF), and tweets (checked by an identity UDF over the join).
//
// The example prints what a static optimizer would estimate for the
// restaurant leaf under the independence assumption next to what the
// pilot run measures, then executes the query dynamically.
package main

import (
	"fmt"
	"log"

	"dyno/internal/baselines"
	"dyno/internal/cluster"
	"dyno/internal/coord"
	"dyno/internal/core"
	"dyno/internal/data"
	"dyno/internal/dfs"
	"dyno/internal/expr"
	"dyno/internal/jaql"
	"dyno/internal/mapreduce"
	"dyno/internal/optimizer"
	"dyno/internal/rewrite"
	"dyno/internal/sqlparse"
)

const q1 = `
	SELECT rs.name
	FROM restaurant rs, review rv, tweet t
	WHERE rs.id = rv.rsid AND rv.tid = t.id
	AND rs.addr[0].zip = 94301 AND rs.addr[0].state = 'CA'
	AND sentanalysis(rv) = 'positive' AND checkid(rv, t)`

func main() {
	ccfg := cluster.DefaultConfig()
	fs := dfs.New(dfs.WithNodes(ccfg.Workers))
	env := &mapreduce.Env{
		FS:    fs,
		Sim:   cluster.New(ccfg),
		Coord: coord.NewService(),
		Reg:   expr.NewRegistry(),
	}
	registerUDFs(env.Reg)
	cat := buildTables(fs)
	fs.SetByteScale(8 << 10)

	// What a static optimizer believes: zip (1/16 of zips here) and
	// state (1/2) multiply under independence, although zip=94301
	// implies state=CA — the paper's correlation trap.
	q := sqlparse.MustParse(q1)
	compiled, err := rewrite.Compile(q)
	if err != nil {
		log.Fatal(err)
	}
	if err := jaql.Bind(compiled.Block, cat); err != nil {
		log.Fatal(err)
	}
	sc := baselines.NewStatsCatalog(env, cat)
	static, err := sc.LeafStats(compiled.Block.RelFor("rs").Leaf)
	if err != nil {
		log.Fatal(err)
	}

	opts := core.DefaultOptions()
	opts.K = 128
	eng := core.NewEngine(env, cat, optimizer.DefaultConfig(float64(ccfg.SlotMemory)), opts)
	res, err := eng.ExecuteSQL(q1)
	if err != nil {
		log.Fatal(err)
	}

	var pilot float64
	for _, sig := range eng.Store.Signatures() {
		ts, _ := eng.Store.Get(sig)
		if _, ok := ts.Col("rs.id"); ok {
			pilot = ts.Card
		}
	}
	restaurants, _ := cat.Lookup("restaurant")
	truth := 0
	for _, rec := range restaurants.AllRecords() {
		addr := rec.FieldOr("addr").Index(0)
		if addr.FieldOr("zip").Int() == 94301 && addr.FieldOr("state").Str() == "CA" {
			truth++
		}
	}

	fmt.Println("filtered-restaurant cardinality (correlated zip/state predicates on a nested array):")
	fmt.Printf("  true value:          %d\n", truth)
	fmt.Printf("  static estimate:     %.0f   (nested addr[0].* paths are opaque to the profile,\n", static.Card)
	fmt.Println("                             so default selectivities multiply under independence)")
	fmt.Printf("  pilot-run estimate:  %.0f\n\n", pilot)
	fmt.Printf("query executed in %.1f virtual seconds (%d jobs, pilot runs %.1fs)\n\n",
		res.TotalSec, res.Jobs, res.PilotSec)
	fmt.Printf("%d positive-review restaurants in 94301, first few:\n%s",
		len(res.Rows), jaql.FormatRows(res.Rows, 8))
}

// registerUDFs installs sentanalysis and checkid. Their selectivities
// (30% positive reviews, 50% verified identities) are never revealed to
// any optimizer — only pilot runs and runtime statistics observe them.
func registerUDFs(reg *expr.Registry) {
	reg.Register(expr.UDF{
		Name:    "sentanalysis",
		CPUCost: 0.002, // sentiment analysis is expensive per review
		Fn: func(args []data.Value) data.Value {
			if data.Hash64(args[0].FieldOr("text"))%10 < 3 {
				return data.String("positive")
			}
			return data.String("negative")
		},
	})
	reg.Register(expr.UDF{
		Name:    "checkid",
		CPUCost: 0.001,
		Fn: func(args []data.Value) data.Value {
			rv, tw := args[0], args[1]
			return data.Bool((data.Hash64(rv.FieldOr("uid"))^data.Hash64(tw.FieldOr("uid")))%2 == 0)
		},
	})
}

func buildTables(fs *dfs.FS) *jaql.Catalog {
	cat := jaql.NewCatalog()
	states := []string{"CA", "NY"}
	// Restaurants: zips 94301..94308 are all CA; 10xxx are NY — zip
	// determines state.
	rs := fs.Create("restaurant")
	for i := 0; i < 800; i++ {
		var zip int64
		state := states[i%2]
		if state == "CA" {
			zip = 94301 + int64(i%8)
		} else {
			zip = 10001 + int64(i%8)
		}
		rs.Append(data.Object(
			data.Field{Name: "id", Value: data.Int(int64(i))},
			data.Field{Name: "name", Value: data.String(fmt.Sprintf("restaurant-%d", i))},
			data.Field{Name: "addr", Value: data.Array(
				data.Object(
					data.Field{Name: "zip", Value: data.Int(zip)},
					data.Field{Name: "state", Value: data.String(state)},
				),
			)},
		))
	}
	cat.Register("restaurant", rs.Close())

	rv := fs.Create("review")
	for i := 0; i < 6000; i++ {
		rv.Append(data.Object(
			data.Field{Name: "id", Value: data.Int(int64(i))},
			data.Field{Name: "rsid", Value: data.Int(int64(i % 800))},
			data.Field{Name: "tid", Value: data.Int(int64(i % 3000))},
			data.Field{Name: "uid", Value: data.Int(int64(i % 900))},
			data.Field{Name: "text", Value: data.String(fmt.Sprintf("review text %d", i))},
		))
	}
	cat.Register("review", rv.Close())

	tw := fs.Create("tweet")
	for i := 0; i < 3000; i++ {
		tw.Append(data.Object(
			data.Field{Name: "id", Value: data.Int(int64(i))},
			data.Field{Name: "uid", Value: data.Int(int64(i % 900))},
		))
	}
	cat.Register("tweet", tw.Close())
	return cat
}
