// Planevolution reproduces Figures 2 and 3 of the paper: the static
// relational optimizer's plan for Q8' and Q9' next to DYNO's plan after
// the pilot runs and after each re-optimization point, showing how the
// plan changes as intermediate results materialize.
package main

import (
	"flag"
	"fmt"
	"log"

	"dyno/internal/experiments"
)

func main() {
	var (
		figure = flag.String("figure", "2", "2 (Q8' evolution) or 3 (Q9' plans)")
		scale  = flag.Float64("scale", 0.25, "row-count multiplier")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale

	var (
		ev  *experiments.PlanEvolution
		err error
	)
	switch *figure {
	case "2":
		ev, err = experiments.Figure2Plans(cfg)
	case "3":
		ev, err = experiments.Figure3Plans(cfg)
	default:
		log.Fatalf("unknown figure %q (want 2 or 3)", *figure)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Figure %s — %s\n\n%s", *figure, ev.Query, ev)
}
