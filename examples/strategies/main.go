// Strategies compares the paper's §5.3 execution strategies — which
// leaf MapReduce jobs to run first, and how many in parallel — on one
// query, a miniature of Figure 5. UNC runs the most uncertain jobs
// first to reach informative re-optimization points early; CHEAP runs
// the cheapest; the SIMPLE variants never re-optimize.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"dyno/internal/experiments"
)

func main() {
	var (
		query = flag.String("query", "Q8p", "evaluation query (Q2, Q7, Q8p, Q9p, Q10)")
		scale = flag.Float64("scale", 0.25, "row-count multiplier")
	)
	flag.Parse()

	cfg := experiments.DefaultConfig()
	cfg.Scale = *scale
	times, err := experiments.Figure5Times(cfg, *query)
	if err != nil {
		log.Fatal(err)
	}
	base := times["SIMPLE_SO"]
	order := make([]string, 0, len(times))
	for k := range times {
		order = append(order, k)
	}
	sort.Slice(order, func(a, b int) bool { return times[order[a]] < times[order[b]] })

	fmt.Printf("execution strategies on %s (SF=300), relative to DYNOPT-SIMPLE_SO:\n\n", *query)
	for _, name := range order {
		fmt.Printf("  %-10s %8.1fs  %6.1f%%\n", name, times[name], 100*times[name]/base)
	}
	fmt.Printf("\nwinner: %s\n", order[0])
}
