// Quickstart: build a tiny dataset, run a join query through DYNO's
// full pipeline (pilot runs → cost-based optimization → dynamic
// MapReduce execution), and print the result with the virtual-time
// breakdown.
package main

import (
	"fmt"
	"log"

	"dyno/internal/cluster"
	"dyno/internal/coord"
	"dyno/internal/core"
	"dyno/internal/data"
	"dyno/internal/dfs"
	"dyno/internal/expr"
	"dyno/internal/jaql"
	"dyno/internal/mapreduce"
	"dyno/internal/optimizer"
)

func main() {
	// 1. A simulated cluster (14 workers, 140 map / 84 reduce slots —
	// the paper's testbed) over an in-memory DFS.
	ccfg := cluster.DefaultConfig()
	fs := dfs.New(dfs.WithNodes(ccfg.Workers))
	env := &mapreduce.Env{
		FS:    fs,
		Sim:   cluster.New(ccfg),
		Coord: coord.NewService(),
		Reg:   expr.NewRegistry(),
	}

	// 2. Two base tables: users and their clicks.
	users := fs.Create("users")
	for i := 0; i < 1000; i++ {
		users.Append(data.Object(
			data.Field{Name: "id", Value: data.Int(int64(i))},
			data.Field{Name: "country", Value: data.String([]string{"US", "DE", "JP"}[i%3])},
		))
	}
	clicks := fs.Create("clicks")
	for i := 0; i < 20000; i++ {
		clicks.Append(data.Object(
			data.Field{Name: "uid", Value: data.Int(int64(i % 1000))},
			data.Field{Name: "ms", Value: data.Int(int64(i * 7 % 500))},
		))
	}
	fs.SetByteScale(4 << 10) // present the ~700 KB of rows as a ~3 GB dataset
	cat := jaql.NewCatalog()
	cat.Register("users", users.Close())
	cat.Register("clicks", clicks.Close())

	// 3. The engine: pilot runs + cost-based join optimization +
	// runtime re-optimization, as in the paper.
	opts := core.DefaultOptions()
	opts.K = 128
	eng := core.NewEngine(env, cat, optimizer.DefaultConfig(float64(ccfg.SlotMemory)), opts)

	res, err := eng.ExecuteSQL(`
		SELECT u.country, count(*) AS clicks, avg(c.ms) AS avg_latency
		FROM users u, clicks c
		WHERE u.id = c.uid AND c.ms < 250
		GROUP BY u.country
		ORDER BY clicks DESC`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("chosen plan:")
	fmt.Print(res.FinalPlan)
	fmt.Printf("\nexecuted in %.1f virtual seconds (pilot runs %.1fs, %d MapReduce jobs)\n\n",
		res.TotalSec, res.PilotSec, res.Jobs)
	fmt.Println(jaql.FormatRows(res.Rows, 10))
}
